package btql

import (
	"sort"

	"btrace/internal/tracer"
)

// Aggregator executes one AggSpec streaming: Observe header fields for every
// matching event (no payload, no entry materialization needed), Merge
// partial aggregators from parallel workers or cluster shards, then Result.
type Aggregator struct {
	spec    AggSpec
	count   uint64
	minTS   uint64
	maxTS   uint64
	buckets map[uint64]uint64 // AggRate: bucket start ts → count
	vals    map[uint64]uint64 // AggTopK: field value → count
}

// New returns a fresh aggregator for the spec.
func (s *AggSpec) New() *Aggregator {
	a := &Aggregator{spec: *s, minTS: ^uint64(0)}
	switch s.Kind {
	case AggRate:
		a.buckets = make(map[uint64]uint64)
	case AggTopK:
		a.vals = make(map[uint64]uint64)
	}
	return a
}

// Observe folds one matching event in. Payload never participates in an
// aggregate, so header fields are all the executor has to supply.
func (a *Aggregator) Observe(stamp, ts uint64, core uint8, tid uint32, cat, level uint8) {
	a.count++
	if ts < a.minTS {
		a.minTS = ts
	}
	if ts > a.maxTS {
		a.maxTS = ts
	}
	switch a.spec.Kind {
	case AggRate:
		a.buckets[ts-ts%a.spec.WindowNs]++
	case AggTopK:
		var v uint64
		switch a.spec.Field {
		case FCore:
			v = uint64(core)
		case FTID:
			v = uint64(tid)
		case FCategory:
			v = uint64(cat)
		default: // FLevel
			v = uint64(level)
		}
		a.vals[v]++
	}
	_ = stamp
}

// ObserveEntry is Observe for callers that already hold a decoded entry.
func (a *Aggregator) ObserveEntry(e *tracer.Entry) {
	a.Observe(e.Stamp, e.TS, e.Core, e.TID, e.Category, e.Level)
}

// Merge folds a partial aggregator (same spec) into a.
func (a *Aggregator) Merge(b *Aggregator) {
	a.count += b.count
	if b.minTS < a.minTS {
		a.minTS = b.minTS
	}
	if b.maxTS > a.maxTS {
		a.maxTS = b.maxTS
	}
	for k, v := range b.buckets {
		a.buckets[k] += v
	}
	for k, v := range b.vals {
		a.vals[k] += v
	}
}

// Bucket is one rate(window) time bucket.
type Bucket struct {
	StartNs uint64  `json:"start_ns"`
	Count   uint64  `json:"count"`
	PerSec  float64 `json:"per_sec"`
}

// TopValue is one topk(n, field) entry.
type TopValue struct {
	Value uint64 `json:"value"`
	Count uint64 `json:"count"`
}

// Result is the JSON-able output of an aggregate query.
type Result struct {
	Kind     string     `json:"kind"`
	Events   uint64     `json:"events"`
	MinTS    uint64     `json:"min_ts,omitempty"`
	MaxTS    uint64     `json:"max_ts,omitempty"`
	WindowNs uint64     `json:"window_ns,omitempty"`
	Field    string     `json:"field,omitempty"`
	Buckets  []Bucket   `json:"buckets,omitempty"`
	Top      []TopValue `json:"top,omitempty"`
}

// Result finalizes the aggregate. Buckets come back sorted by start time,
// top values by descending count (value ascending as the tie-break, so the
// output is deterministic).
func (a *Aggregator) Result() Result {
	r := Result{Events: a.count}
	if a.count > 0 {
		r.MinTS, r.MaxTS = a.minTS, a.maxTS
	}
	switch a.spec.Kind {
	case AggCount:
		r.Kind = "count"
	case AggRate:
		r.Kind = "rate"
		r.WindowNs = a.spec.WindowNs
		r.Buckets = make([]Bucket, 0, len(a.buckets))
		for start, n := range a.buckets {
			r.Buckets = append(r.Buckets, Bucket{
				StartNs: start,
				Count:   n,
				PerSec:  float64(n) * 1e9 / float64(a.spec.WindowNs),
			})
		}
		sort.Slice(r.Buckets, func(i, j int) bool { return r.Buckets[i].StartNs < r.Buckets[j].StartNs })
	case AggTopK:
		r.Kind = "topk"
		r.Field = a.spec.Field.String()
		all := make([]TopValue, 0, len(a.vals))
		for v, n := range a.vals {
			all = append(all, TopValue{Value: v, Count: n})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Count != all[j].Count {
				return all[i].Count > all[j].Count
			}
			return all[i].Value < all[j].Value
		})
		if len(all) > a.spec.K {
			all = all[:a.spec.K]
		}
		r.Top = all
	}
	return r
}
