package btql

import (
	"math/rand"
	"reflect"
	"testing"

	"btrace/internal/tracer"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseBasics(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"category == 2", "(category == 2)"},
		{"{ category == 2 }", "(category == 2)"},
		{"core != 0 && tid >= 100", "((core != 0) && (tid >= 100))"},
		{"stamp < 10 || stamp > 20", "((stamp < 10) || (stamp > 20))"},
		{"!(level == 3)", "!(level == 3)"},
		{`payload contains "oom"`, `(payload contains "oom")`},
		{`payload prefix "GC"`, `(payload prefix "GC")`},
		{"time >= 5ms && time < 1s", "((time >= 5000000) && (time < 1000000000))"},
		{"a_core_like_field == 1", ""}, // unknown field
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if c.want == "" {
			if err == nil {
				t.Errorf("Parse(%q): expected error", c.src)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := q.Filter.String(); got != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// && binds tighter than ||.
	q := mustParse(t, "core == 1 || core == 2 && category == 3")
	want := "((core == 1) || ((core == 2) && (category == 3)))"
	if got := q.Filter.String(); got != want {
		t.Fatalf("precedence: got %s want %s", got, want)
	}
}

func TestParseAggregates(t *testing.T) {
	q := mustParse(t, "category == 1 | count()")
	if q.Agg == nil || q.Agg.Kind != AggCount {
		t.Fatalf("count: %+v", q.Agg)
	}
	q = mustParse(t, "| rate(10ms)")
	if q.Filter != nil || q.Agg.Kind != AggRate || q.Agg.WindowNs != 10_000_000 {
		t.Fatalf("rate: %+v", q.Agg)
	}
	q = mustParse(t, "tid > 0 | topk(5, tid)")
	if q.Agg.Kind != AggTopK || q.Agg.K != 5 || q.Agg.Field != FTID {
		t.Fatalf("topk: %+v", q.Agg)
	}
	for _, bad := range []string{
		"| topk(0, tid)", "| topk(5, payload)", "| topk(5, stamp)",
		"| rate(0)", "| median()", "| count() extra", "count()",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"category = 2", "category &", "(core == 1", "{core == 1",
		`payload contains oom`, `payload == "x"`, "core == ", "core == 99999999999999999999999",
		"!!", "core == 5msx", `payload contains "unterminated`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestMatchEntry(t *testing.T) {
	e := tracer.Entry{Stamp: 100, TS: 5000, Core: 2, TID: 4096, Category: 3, Level: 1,
		Payload: []byte("GC pause 12ms")}
	cases := []struct {
		src  string
		want bool
	}{
		{"", true},
		{"stamp == 100", true},
		{"stamp != 100", false},
		{"time >= 5us", true},
		{"core == 2 && tid == 4096", true},
		{"core == 2 && tid == 4097", false},
		{"core == 1 || category == 3", true},
		{"!(category == 3)", false},
		{`payload prefix "GC"`, true},
		{`payload prefix "pause"`, false},
		{`payload contains "pause"`, true},
		{`payload contains "oom"`, false},
		{"level <= 1 && payload contains \"12ms\"", true},
	}
	for _, c := range cases {
		p := mustParse(t, c.src).Predicate()
		if got := p.Match(&e); got != c.want {
			t.Errorf("Match(%q) = %v, want %v", c.src, got, c.want)
		}
		// MatchHeader must never contradict an exact match (it may only be
		// more permissive on payload predicates).
		if !p.MatchHeader(e.Stamp, e.TS, e.Core, e.TID, e.Category, e.Level) && c.want {
			t.Errorf("MatchHeader(%q) pruned a matching event", c.src)
		}
	}
}

func TestBoundsAndMasks(t *testing.T) {
	p := mustParse(t, "stamp >= 100 && stamp < 200 && category == 2").Predicate()
	if lo, hi := p.StampBounds(); lo != 100 || hi != 199 {
		t.Fatalf("stamp bounds [%d,%d]", lo, hi)
	}
	if m := p.CatMask(); m != 1<<2 {
		t.Fatalf("cat mask %#x", m)
	}
	if m := p.CoreMask(); m != ^uint64(0) {
		t.Fatalf("core mask should be unconstrained, got %#x", m)
	}
	// Or widens; a branch without the field unconstrains the hull.
	p = mustParse(t, "stamp >= 100 || category == 2").Predicate()
	if lo, hi := p.StampBounds(); lo != 0 || hi != ^uint64(0) {
		t.Fatalf("or bounds [%d,%d]", lo, hi)
	}
	p = mustParse(t, "core == 1 || core == 3").Predicate()
	if m := p.CoreMask(); m != (1<<1)|(1<<3) {
		t.Fatalf("core mask %#x", m)
	}
	// Values >= 63 collapse onto bit 63.
	p = mustParse(t, "core == 200").Predicate()
	if m := p.CoreMask(); m != 1<<63 {
		t.Fatalf("clamped core mask %#x", m)
	}
	if !p.NeedsPayload() {
		p2 := mustParse(t, `payload contains "x"`).Predicate()
		if !p2.NeedsPayload() {
			t.Fatal("payload predicate must need payload")
		}
	}
}

func TestMatchMeta(t *testing.T) {
	m := Meta{
		MinStamp: 100, MaxStamp: 200,
		MinTS: 1000, MaxTS: 2000,
		CoreBits: 1<<0 | 1<<1,
		CatBits:  1 << 2,
		HasTID:   true, MinTID: 50, MaxTID: 90,
		TIDMay: func(tid uint32) bool { return tid == 60 },
	}
	cases := []struct {
		src  string
		want bool
	}{
		{"stamp >= 150", true},
		{"stamp > 200", false},
		{"stamp < 100", false},
		{"time == 1500", true},
		{"time > 2000", false},
		{"core == 1", true},
		{"core == 5", false},
		{"core < 2", true},
		{"category == 2", true},
		{"category == 3", false},
		{"tid == 60", true},
		{"tid == 70", false}, // in range but bloom says no
		{"tid == 10", false}, // out of range
		{"tid >= 50", true},
		{"level == 7", true},                   // no level summary: maybe
		{`payload contains "x"`, true},         // maybe
		{"!(stamp >= 100)", false},             // whole block satisfies stamp>=100
		{"!(stamp >= 150)", true},              // some events may be below 150
		{"stamp > 200 || category == 2", true}, // one branch maybe
		{"stamp > 200 && level == 7", false},   // one branch provably empty
	}
	for _, c := range cases {
		p := mustParse(t, c.src).Predicate()
		if got := p.MatchMeta(&m); got != c.want {
			t.Errorf("MatchMeta(%q) = %v, want %v", c.src, got, c.want)
		}
	}
	// Bit 63 covers all values >= 63.
	m2 := Meta{MinStamp: 1, MaxStamp: 2, MinTS: 1, MaxTS: 2, CoreBits: 1 << 63, CatBits: 1}
	if !Compile(mustParse(t, "core == 100").Filter).MatchMeta(&m2) {
		t.Fatal("clamped core bit must stay a maybe for values >= 63")
	}
	if Compile(mustParse(t, "core == 10").Filter).MatchMeta(&m2) {
		t.Fatal("core 10 cannot hide under bit 63")
	}
}

// TestMetaNeverPrunesMatches is the soundness property the pushdown relies
// on: if any event in a summarized population matches, MatchMeta must not
// return false for that population's summary.
func TestMetaNeverPrunesMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	queries := []string{
		"stamp >= 500 && stamp < 600",
		"category == 2 && time > 100000",
		"core == 1 || core == 7",
		"tid == 12345",
		"!(category == 0) && level >= 2",
		"stamp < 100 || (tid > 1000 && core != 0)",
		`payload contains "z" && category == 1`,
	}
	for _, src := range queries {
		p := mustParse(t, src).Predicate()
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(32)
			ents := make([]tracer.Entry, n)
			m := Meta{MinStamp: ^uint64(0), MinTS: ^uint64(0), HasTID: true, MinTID: ^uint32(0)}
			tids := map[uint32]bool{}
			for i := range ents {
				e := &ents[i]
				e.Stamp = uint64(rng.Intn(1000))
				e.TS = uint64(rng.Intn(200000))
				e.Core = uint8(rng.Intn(80))
				e.TID = uint32(rng.Intn(20000))
				e.Category = uint8(rng.Intn(4))
				e.Level = uint8(rng.Intn(4))
				e.Payload = []byte("az")[:rng.Intn(3)]
				m.MinStamp = min64(m.MinStamp, e.Stamp)
				m.MaxStamp = max64(m.MaxStamp, e.Stamp)
				m.MinTS = min64(m.MinTS, e.TS)
				m.MaxTS = max64(m.MaxTS, e.TS)
				cb := e.Core
				if cb > 63 {
					cb = 63
				}
				m.CoreBits |= 1 << cb
				m.CatBits |= 1 << e.Category
				if e.TID < m.MinTID {
					m.MinTID = e.TID
				}
				if e.TID > m.MaxTID {
					m.MaxTID = e.TID
				}
				tids[e.TID] = true
			}
			m.TIDMay = func(tid uint32) bool { return tids[tid] }
			anyMatch := false
			for i := range ents {
				if p.Match(&ents[i]) {
					anyMatch = true
					e := &ents[i]
					if !p.MatchHeader(e.Stamp, e.TS, e.Core, e.TID, e.Category, e.Level) {
						t.Fatalf("%q: MatchHeader pruned matching entry %+v", src, e)
					}
				}
			}
			if anyMatch && !p.MatchMeta(&m) {
				t.Fatalf("%q: MatchMeta pruned a population with matches", src)
			}
		}
	}
}

func TestAggregators(t *testing.T) {
	spec := &AggSpec{Kind: AggCount}
	a := spec.New()
	for i := 0; i < 10; i++ {
		a.Observe(uint64(i), uint64(i*100), 0, 1, 2, 0)
	}
	r := a.Result()
	if r.Kind != "count" || r.Events != 10 || r.MinTS != 0 || r.MaxTS != 900 {
		t.Fatalf("count result %+v", r)
	}

	spec = &AggSpec{Kind: AggRate, WindowNs: 100}
	a = spec.New()
	b := spec.New()
	for i := 0; i < 10; i++ {
		a.Observe(uint64(i), uint64(i*30), 0, 1, 2, 0)
	}
	for i := 10; i < 20; i++ {
		b.Observe(uint64(i), uint64(i*30), 0, 1, 2, 0)
	}
	a.Merge(b)
	r = a.Result()
	if r.Events != 20 || len(r.Buckets) == 0 {
		t.Fatalf("rate result %+v", r)
	}
	var total uint64
	for i, bk := range r.Buckets {
		total += bk.Count
		if i > 0 && bk.StartNs <= r.Buckets[i-1].StartNs {
			t.Fatalf("buckets unsorted: %+v", r.Buckets)
		}
		if bk.StartNs%100 != 0 {
			t.Fatalf("bucket start %d not window-aligned", bk.StartNs)
		}
	}
	if total != 20 {
		t.Fatalf("bucket counts sum to %d, want 20", total)
	}

	spec = &AggSpec{Kind: AggTopK, K: 2, Field: FCategory}
	a = spec.New()
	for i := 0; i < 30; i++ {
		a.Observe(uint64(i), 0, 0, 1, uint8(i%3), 0) // cats 0,1,2 equally
	}
	a.Observe(30, 0, 0, 1, 1, 0) // tip category 1 ahead
	r = a.Result()
	if len(r.Top) != 2 || r.Top[0].Value != 1 || r.Top[0].Count != 11 {
		t.Fatalf("topk result %+v", r)
	}
	if r.Field != "category" {
		t.Fatalf("topk field %q", r.Field)
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		"category == 2 && time >= 5ms",
		`(core == 1 || !(tid > 10)) && payload contains "x"`,
		"stamp >= 1 | count()",
		"| rate(10ms)",
		"level < 3 | topk(4, core)",
	} {
		q := mustParse(t, src)
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", q.String(), src, err)
		}
		if !reflect.DeepEqual(q, q2) {
			t.Fatalf("round trip changed AST: %q vs %q", q, q2)
		}
	}
}
