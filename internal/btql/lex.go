package btql

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexical token kinds. The lexer is a hand-rolled single
// pass so Parse stays allocation-light and trivially fuzzable.
type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNumber // uint64 value, duration suffixes already applied
	tString
	tAndAnd
	tOrOr
	tBang
	tLParen
	tRParen
	tLBrace
	tRBrace
	tPipe
	tComma
	tEq // ==
	tNe // !=
	tLt
	tLe
	tGt
	tGe
)

type token struct {
	kind tokKind
	pos  int    // byte offset in the source, for error messages
	text string // tIdent/tString
	num  uint64 // tNumber
}

// ParseError reports a syntax or semantic error with its byte offset.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("btql: %s (at offset %d)", e.Msg, e.Pos) }

func errAt(pos int, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src string
	pos int
}

// durUnits maps duration suffixes to nanoseconds. Numbers may carry a
// suffix anywhere a literal is accepted (`time > 5ms`); bare numbers are
// taken verbatim.
var durUnits = []struct {
	suffix string
	mult   uint64
}{
	{"ns", 1},
	{"us", 1_000},
	{"ms", 1_000_000},
	{"s", 1_000_000_000},
	{"m", 60_000_000_000},
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tLParen, pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tRParen, pos: start}, nil
	case c == '{':
		l.pos++
		return token{kind: tLBrace, pos: start}, nil
	case c == '}':
		l.pos++
		return token{kind: tRBrace, pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tComma, pos: start}, nil
	case c == '&':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '&' {
			l.pos += 2
			return token{kind: tAndAnd, pos: start}, nil
		}
		return token{}, errAt(start, "expected '&&'")
	case c == '|':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '|' {
			l.pos += 2
			return token{kind: tOrOr, pos: start}, nil
		}
		l.pos++
		return token{kind: tPipe, pos: start}, nil
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tNe, pos: start}, nil
		}
		l.pos++
		return token{kind: tBang, pos: start}, nil
	case c == '=':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tEq, pos: start}, nil
		}
		return token{}, errAt(start, "expected '=='")
	case c == '<':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tLe, pos: start}, nil
		}
		l.pos++
		return token{kind: tLt, pos: start}, nil
	case c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tGe, pos: start}, nil
		}
		l.pos++
		return token{kind: tGt, pos: start}, nil
	case c == '"':
		return l.lexString()
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tIdent, pos: start, text: l.src[start:l.pos]}, nil
	default:
		return token{}, errAt(start, "unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	var v uint64
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		d := uint64(l.src[l.pos] - '0')
		if v > (^uint64(0)-d)/10 {
			return token{}, errAt(start, "number overflows uint64")
		}
		v = v*10 + d
		l.pos++
	}
	// Optional duration suffix: longest match first so "ms" beats "m".
	rest := l.src[l.pos:]
	for _, u := range durUnits {
		if strings.HasPrefix(rest, u.suffix) {
			// The suffix must end the literal ("5msx" is an error, not 5ms).
			if len(rest) > len(u.suffix) && isIdentCont(rest[len(u.suffix)]) {
				continue
			}
			if u.mult != 1 && v > ^uint64(0)/u.mult {
				return token{}, errAt(start, "duration overflows uint64")
			}
			l.pos += len(u.suffix)
			return token{kind: tNumber, pos: start, num: v * u.mult}, nil
		}
	}
	if l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
		return token{}, errAt(start, "malformed number")
	}
	return token{kind: tNumber, pos: start, num: v}, nil
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{kind: tString, pos: start, text: b.String()}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, errAt(start, "unterminated string")
			}
			l.pos++
			switch l.src[l.pos] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '0':
				b.WriteByte(0)
			case 'x':
				if l.pos+2 >= len(l.src) {
					return token{}, errAt(l.pos, "truncated \\x escape")
				}
				hi, ok1 := hexVal(l.src[l.pos+1])
				lo, ok2 := hexVal(l.src[l.pos+2])
				if !ok1 || !ok2 {
					return token{}, errAt(l.pos, "malformed \\x escape")
				}
				b.WriteByte(hi<<4 | lo)
				l.pos += 2
			default:
				return token{}, errAt(l.pos, "unknown escape '\\%c'", l.src[l.pos])
			}
			l.pos++
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, errAt(start, "unterminated string")
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
