package btql

import (
	"bytes"

	"btrace/internal/tracer"
)

// Meta summarizes a file or block for pruning. The store fills it from
// segment headers (row tier) or v2 block headers (cold tier); zero-valued
// optional parts mean "unknown" and never cause a false prune.
type Meta struct {
	MinStamp, MaxStamp uint64
	MinTS, MaxTS       uint64
	// CoreBits/CatBits are presence bitmaps: bit min(v,63) is set for every
	// value v present. Zero means unknown (no events summarized).
	CoreBits, CatBits uint64
	// TID summaries exist only for v2 cold blocks.
	HasTID         bool
	MinTID, MaxTID uint32
	// TIDMay reports whether a TID may be present (bloom filter probe).
	// nil means no membership information beyond the min/max range.
	TIDMay func(uint32) bool
}

// Predicate is a compiled filter. It is immutable and safe for concurrent
// use by any number of cursors.
type Predicate struct {
	expr         Expr // nil matches everything
	needsPayload bool

	// Extracted hulls and value masks, for folding into store.Query so the
	// existing segment/sparse-index pruning benefits from BTQL bounds even
	// before MatchMeta runs. Max bounds of ^uint64(0) mean unbounded.
	minStamp, maxStamp uint64
	minTS, maxTS       uint64
	coreMask, catMask  uint64 // bit min(v,63); ^uint64(0) = unconstrained
}

// Compile lowers a filter expression to a Predicate. A nil expression
// compiles to the match-all predicate.
func Compile(e Expr) *Predicate {
	p := &Predicate{
		expr:     e,
		maxStamp: ^uint64(0), maxTS: ^uint64(0),
		coreMask: ^uint64(0), catMask: ^uint64(0),
	}
	if e == nil {
		return p
	}
	p.needsPayload = needsPayload(e)
	p.minStamp, p.maxStamp = boundsOf(e, FStamp)
	p.minTS, p.maxTS = boundsOf(e, FTime)
	if s := valueSet(e, FCore); s != nil {
		p.coreMask = maskOf(s)
	}
	if s := valueSet(e, FCategory); s != nil {
		p.catMask = maskOf(s)
	}
	return p
}

// Predicate compiles q's filter stage.
func (q *Query) Predicate() *Predicate { return Compile(q.Filter) }

// NeedsPayload reports whether exact evaluation requires the event payload.
func (p *Predicate) NeedsPayload() bool { return p.needsPayload }

// StampBounds returns the [lo, hi] hull the predicate allows for stamps
// (hi == ^uint64(0) means unbounded above).
func (p *Predicate) StampBounds() (lo, hi uint64) { return p.minStamp, p.maxStamp }

// TimeBounds returns the [lo, hi] hull for event timestamps.
func (p *Predicate) TimeBounds() (lo, hi uint64) { return p.minTS, p.maxTS }

// CoreMask returns the presence-bitmap mask of cores the predicate can
// match (bit min(core,63)); ^uint64(0) when unconstrained.
func (p *Predicate) CoreMask() uint64 { return p.coreMask }

// CatMask is CoreMask for categories.
func (p *Predicate) CatMask() uint64 { return p.catMask }

// Match evaluates the predicate exactly against a full entry.
func (p *Predicate) Match(e *tracer.Entry) bool {
	if p.expr == nil {
		return true
	}
	return evalEntry(p.expr, e)
}

// MatchHeader evaluates against header fields only. Payload predicates
// evaluate to "maybe" (true), so a false return is exact ("provably no")
// while true may still need a payload re-check when NeedsPayload.
func (p *Predicate) MatchHeader(stamp, ts uint64, core uint8, tid uint32, cat, level uint8) bool {
	if p.expr == nil {
		return true
	}
	return evalHeader(p.expr, stamp, ts, core, tid, cat, level) != triNo
}

// MatchMeta evaluates against a file/block summary. False means the
// summarized range provably contains no matching event and can be skipped.
func (p *Predicate) MatchMeta(m *Meta) bool {
	if p.expr == nil {
		return true
	}
	return evalMeta(p.expr, m) != triNo
}

func needsPayload(e Expr) bool {
	switch e := e.(type) {
	case *And:
		return needsPayload(e.L) || needsPayload(e.R)
	case *Or:
		return needsPayload(e.L) || needsPayload(e.R)
	case *Not:
		return needsPayload(e.X)
	case *PayloadMatch:
		return true
	default:
		return false
	}
}

// ---- exact evaluation ----

func evalEntry(e Expr, ev *tracer.Entry) bool {
	switch e := e.(type) {
	case *And:
		return evalEntry(e.L, ev) && evalEntry(e.R, ev)
	case *Or:
		return evalEntry(e.L, ev) || evalEntry(e.R, ev)
	case *Not:
		return !evalEntry(e.X, ev)
	case *Cmp:
		return cmpU64(fieldValue(e.Field, ev), e.Op, e.Val)
	case *PayloadMatch:
		if e.Prefix {
			return bytes.HasPrefix(ev.Payload, []byte(e.Needle))
		}
		return bytes.Contains(ev.Payload, []byte(e.Needle))
	}
	return false
}

func fieldValue(f Field, ev *tracer.Entry) uint64 {
	switch f {
	case FStamp:
		return ev.Stamp
	case FTime:
		return ev.TS
	case FCore:
		return uint64(ev.Core)
	case FTID:
		return uint64(ev.TID)
	case FCategory:
		return uint64(ev.Category)
	default: // FLevel
		return uint64(ev.Level)
	}
}

func cmpU64(x uint64, op CmpOp, v uint64) bool {
	switch op {
	case OpEq:
		return x == v
	case OpNe:
		return x != v
	case OpLt:
		return x < v
	case OpLe:
		return x <= v
	case OpGt:
		return x > v
	default:
		return x >= v
	}
}

// ---- tri-state evaluation (header and metadata fidelities) ----

// tri is a three-valued truth: triNo is a proof of non-match, triYes a
// proof of match, triMaybe neither. The distinction keeps Not sound: a
// negation only flips proofs, never guesses.
type tri uint8

const (
	triNo tri = iota
	triMaybe
	triYes
)

func triNot(t tri) tri {
	switch t {
	case triNo:
		return triYes
	case triYes:
		return triNo
	default:
		return triMaybe
	}
}

func triAnd(a, b tri) tri {
	if a == triNo || b == triNo {
		return triNo
	}
	if a == triYes && b == triYes {
		return triYes
	}
	return triMaybe
}

func triOr(a, b tri) tri {
	if a == triYes || b == triYes {
		return triYes
	}
	if a == triNo && b == triNo {
		return triNo
	}
	return triMaybe
}

func triBool(b bool) tri {
	if b {
		return triYes
	}
	return triNo
}

func evalHeader(e Expr, stamp, ts uint64, core uint8, tid uint32, cat, level uint8) tri {
	switch e := e.(type) {
	case *And:
		return triAnd(evalHeader(e.L, stamp, ts, core, tid, cat, level),
			evalHeader(e.R, stamp, ts, core, tid, cat, level))
	case *Or:
		return triOr(evalHeader(e.L, stamp, ts, core, tid, cat, level),
			evalHeader(e.R, stamp, ts, core, tid, cat, level))
	case *Not:
		return triNot(evalHeader(e.X, stamp, ts, core, tid, cat, level))
	case *Cmp:
		var x uint64
		switch e.Field {
		case FStamp:
			x = stamp
		case FTime:
			x = ts
		case FCore:
			x = uint64(core)
		case FTID:
			x = uint64(tid)
		case FCategory:
			x = uint64(cat)
		default:
			x = uint64(level)
		}
		return triBool(cmpU64(x, e.Op, e.Val))
	case *PayloadMatch:
		return triMaybe
	}
	return triMaybe
}

func evalMeta(e Expr, m *Meta) tri {
	switch e := e.(type) {
	case *And:
		return triAnd(evalMeta(e.L, m), evalMeta(e.R, m))
	case *Or:
		return triOr(evalMeta(e.L, m), evalMeta(e.R, m))
	case *Not:
		return triNot(evalMeta(e.X, m))
	case *Cmp:
		switch e.Field {
		case FStamp:
			return rangeTri(m.MinStamp, m.MaxStamp, e.Op, e.Val)
		case FTime:
			return rangeTri(m.MinTS, m.MaxTS, e.Op, e.Val)
		case FCore:
			return bitsTri(m.CoreBits, e.Op, e.Val)
		case FCategory:
			return bitsTri(m.CatBits, e.Op, e.Val)
		case FTID:
			if !m.HasTID {
				return triMaybe
			}
			t := rangeTri(uint64(m.MinTID), uint64(m.MaxTID), e.Op, e.Val)
			// The bloom can veto equality probes the range alone can't.
			if t != triNo && e.Op == OpEq && m.TIDMay != nil &&
				e.Val <= uint64(^uint32(0)) && !m.TIDMay(uint32(e.Val)) {
				return triNo
			}
			return t
		default: // FLevel: no summary kept
			return triMaybe
		}
	case *PayloadMatch:
		return triMaybe
	}
	return triMaybe
}

// rangeTri evaluates `x op v` over all x in [lo, hi]: triYes if every value
// satisfies it, triNo if none does.
func rangeTri(lo, hi uint64, op CmpOp, v uint64) tri {
	if lo > hi {
		return triMaybe // malformed/unknown summary: never prune on it
	}
	var any, all bool
	switch op {
	case OpEq:
		any = lo <= v && v <= hi
		all = lo == v && hi == v
	case OpNe:
		any = !(lo == v && hi == v)
		all = v < lo || v > hi
	case OpLt:
		any = lo < v
		all = hi < v
	case OpLe:
		any = lo <= v
		all = hi <= v
	case OpGt:
		any = hi > v
		all = lo > v
	default: // OpGe
		any = hi >= v
		all = lo >= v
	}
	if !any {
		return triNo
	}
	if all {
		return triYes
	}
	return triMaybe
}

// bitsTri evaluates a comparison over a presence bitmap where bit b<63
// asserts value b is present and bit 63 asserts some value in [63,255] is.
func bitsTri(bits uint64, op CmpOp, v uint64) tri {
	if bits == 0 {
		return triMaybe // no summary
	}
	var any, all bool
	all = true
	for b := uint(0); b < 64; b++ {
		if bits&(1<<b) == 0 {
			continue
		}
		var sAny, sAll bool
		if b < 63 {
			sAny = cmpU64(uint64(b), op, v)
			sAll = sAny
		} else {
			// Bit 63 covers values 63..255.
			switch rangeTri(63, 255, op, v) {
			case triYes:
				sAny, sAll = true, true
			case triNo:
				sAny, sAll = false, false
			default:
				sAny, sAll = true, false
			}
		}
		any = any || sAny
		all = all && sAll
	}
	if !any {
		return triNo
	}
	if all {
		return triYes
	}
	return triMaybe
}

// ---- bounds and value-set extraction ----

// boundsOf returns the hull [lo, hi] of values field f can take under e.
// Unconstrained sides come back as 0 / ^uint64(0).
func boundsOf(e Expr, f Field) (lo, hi uint64) {
	switch e := e.(type) {
	case *And:
		l1, h1 := boundsOf(e.L, f)
		l2, h2 := boundsOf(e.R, f)
		lo, hi = max64(l1, l2), min64(h1, h2)
		if lo > hi { // contradictory: collapse to an empty probe point
			return lo, lo
		}
		return lo, hi
	case *Or:
		l1, h1 := boundsOf(e.L, f)
		l2, h2 := boundsOf(e.R, f)
		return min64(l1, l2), max64(h1, h2)
	case *Cmp:
		if e.Field != f {
			return 0, ^uint64(0)
		}
		switch e.Op {
		case OpEq:
			return e.Val, e.Val
		case OpLt:
			if e.Val == 0 {
				return 0, 0 // unsatisfiable; [0,0] is still sound
			}
			return 0, e.Val - 1
		case OpLe:
			return 0, e.Val
		case OpGt:
			if e.Val == ^uint64(0) {
				return e.Val, e.Val
			}
			return e.Val + 1, ^uint64(0)
		case OpGe:
			return e.Val, ^uint64(0)
		default: // OpNe constrains nothing hull-wise
			return 0, ^uint64(0)
		}
	default: // Not, PayloadMatch: conservative
		return 0, ^uint64(0)
	}
}

// valueSet returns the set of byte values f may take under e, or nil when
// unconstrained. Sound for pruning: the true match set is a subset.
func valueSet(e Expr, f Field) *[256]bool {
	switch e := e.(type) {
	case *And:
		l, r := valueSet(e.L, f), valueSet(e.R, f)
		if l == nil {
			return r
		}
		if r == nil {
			return l
		}
		var s [256]bool
		for i := range s {
			s[i] = l[i] && r[i]
		}
		return &s
	case *Or:
		l, r := valueSet(e.L, f), valueSet(e.R, f)
		if l == nil || r == nil {
			return nil
		}
		var s [256]bool
		for i := range s {
			s[i] = l[i] || r[i]
		}
		return &s
	case *Cmp:
		if e.Field != f {
			return nil
		}
		var s [256]bool
		for i := range s {
			s[i] = cmpU64(uint64(i), e.Op, e.Val)
		}
		return &s
	default: // Not, PayloadMatch: conservative
		return nil
	}
}

// maskOf collapses a byte-value set to the store's bit-min(v,63) bitmap.
func maskOf(s *[256]bool) uint64 {
	var m uint64
	for v := 0; v < 256; v++ {
		if s[v] {
			b := v
			if b > 63 {
				b = 63
			}
			m |= 1 << uint(b)
		}
	}
	return m
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
