package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func uniform(n int, size uint32) []uint32 {
	t := make([]uint32, n)
	for i := range t {
		t[i] = size
	}
	return t
}

func TestAnalyzeEmpty(t *testing.T) {
	r, err := Analyze(uniform(10, 8), nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Retained != 0 || r.Fragments != 0 || r.LatestFragmentBytes != 0 {
		t.Fatalf("empty readout: %+v", r)
	}
	if r.TotalWritten != 10 || r.TotalBytes != 80 {
		t.Fatalf("truth accounting: %+v", r)
	}
}

func TestAnalyzePerfectSuffix(t *testing.T) {
	truth := uniform(100, 10)
	retained := []uint64{}
	for s := uint64(41); s <= 100; s++ {
		retained = append(retained, s)
	}
	r, err := Analyze(truth, retained, 600)
	if err != nil {
		t.Fatal(err)
	}
	if r.Fragments != 1 {
		t.Errorf("Fragments = %d, want 1", r.Fragments)
	}
	if r.LatestFragmentEntries != 60 || r.LatestFragmentBytes != 600 {
		t.Errorf("latest fragment: %d entries %d bytes", r.LatestFragmentEntries, r.LatestFragmentBytes)
	}
	if r.LossRate != 0 {
		t.Errorf("LossRate = %v, want 0", r.LossRate)
	}
	if r.EffectivityRatio != 1 {
		t.Errorf("EffectivityRatio = %v, want 1", r.EffectivityRatio)
	}
}

func TestAnalyzeFig5Example(t *testing.T) {
	// The paper's Fig. 5 worked example: 16 one-unit entries written
	// (ts 5..20 in the figure; stamps 5..20 here), entries 12 and 14
	// overwritten along with 2..9 older ones, retained: 10,11,13,15..20.
	// The figure computes effectivity 6/16 = 37.5% with the latest
	// fragment being ts-15..ts-20.
	truth := uniform(20, 1)
	retained := []uint64{10, 11, 13, 15, 16, 17, 18, 19, 20}
	r, err := Analyze(truth, retained, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r.LatestFragmentEntries != 6 {
		t.Errorf("latest fragment = %d entries, want 6 (ts-15..ts-20)", r.LatestFragmentEntries)
	}
	if got := r.EffectivityRatio; math.Abs(got-0.375) > 1e-9 {
		t.Errorf("effectivity = %v, want 0.375", got)
	}
	if r.Fragments != 3 {
		t.Errorf("fragments = %d, want 3 (10-11, 13, 15-20)", r.Fragments)
	}
	// Collected range 10..20 spans 11 entries, 9 retained.
	if want := 1 - 9.0/11.0; math.Abs(r.LossRate-want) > 1e-9 {
		t.Errorf("loss rate = %v, want %v", r.LossRate, want)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	truth := uniform(5, 1)
	if _, err := Analyze(truth, []uint64{0}, 0); err == nil {
		t.Error("stamp 0: expected error")
	}
	if _, err := Analyze(truth, []uint64{6}, 0); err == nil {
		t.Error("stamp beyond truth: expected error")
	}
	if _, err := Analyze(truth, []uint64{2, 2}, 0); err == nil {
		t.Error("duplicate stamp: expected error")
	}
}

func TestAnalyzeWeightedBytes(t *testing.T) {
	// Sizes differ: loss rate is byte-weighted, not entry-weighted.
	truth := []uint32{100, 1, 1, 1, 100}
	r, err := Analyze(truth, []uint64{1, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Range 1..5 = 203 bytes, retained 200 -> loss 3/203.
	if want := 3.0 / 203.0; math.Abs(r.LossRate-want) > 1e-9 {
		t.Errorf("loss = %v want %v", r.LossRate, want)
	}
	if r.LatestFragmentBytes != 100 {
		t.Errorf("latest fragment bytes = %d", r.LatestFragmentBytes)
	}
}

func TestRetentionMap(t *testing.T) {
	m := RetentionMap(10, []uint64{7, 9, 10}, 4)
	want := []bool{true, false, true, true} // stamps 7,8,9,10
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("map = %v, want %v", m, want)
		}
	}
	if len(RetentionMap(3, nil, 10)) != 3 {
		t.Error("n capped at truth length")
	}
}

func TestGaps(t *testing.T) {
	truth := uniform(10, 2)
	gaps := Gaps(truth, []uint64{2, 3, 6, 9})
	if len(gaps) != 2 {
		t.Fatalf("gaps = %+v", gaps)
	}
	if gaps[0].FromStamp != 4 || gaps[0].ToStamp != 5 || gaps[0].Bytes != 4 {
		t.Errorf("gap 0: %+v", gaps[0])
	}
	if gaps[1].FromStamp != 7 || gaps[1].ToStamp != 8 {
		t.Errorf("gap 1: %+v", gaps[1])
	}
	if Gaps(truth, nil) != nil {
		t.Error("no retained -> no gaps")
	}
}

func TestLatencyStats(t *testing.T) {
	st := Latency(nil)
	if st.Count != 0 {
		t.Fatal("empty")
	}
	ns := []int64{10, 10, 10, 10, 1000}
	st = Latency(ns)
	if st.Count != 5 || st.Max != 1000 || st.P50 != 10 {
		t.Fatalf("stats: %+v", st)
	}
	// Geomean of (10,10,10,10,1000) = 10^(4/5) * 1000^(1/5) ~ 25.1:
	// robust to the outlier, unlike the arithmetic mean (208).
	if st.GeoMean < 20 || st.GeoMean > 32 {
		t.Errorf("geomean = %v", st.GeoMean)
	}
}

func TestLatencyGeoMeanQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		ns := make([]int64, len(raw))
		var minV, maxV int64 = math.MaxInt64, 0
		for i, v := range raw {
			ns[i] = int64(v) + 1
			if ns[i] < minV {
				minV = ns[i]
			}
			if ns[i] > maxV {
				maxV = ns[i]
			}
		}
		st := Latency(ns)
		return st.GeoMean >= float64(minV)-1e-6 && st.GeoMean <= float64(maxV)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	ns := make([]int64, 100)
	for i := range ns {
		ns[i] = int64(i + 1)
	}
	cdf := CDF(ns, 11)
	if len(cdf) != 11 {
		t.Fatalf("points = %d", len(cdf))
	}
	if cdf[0][1] != 0 || cdf[10][1] != 100 {
		t.Errorf("endpoints: %v %v", cdf[0], cdf[10])
	}
	if cdf[10][0] != 100 {
		t.Errorf("max latency = %v", cdf[10][0])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i][0] < cdf[i-1][0] {
			t.Fatal("CDF not monotonic")
		}
	}
	if CDF(nil, 5) != nil || CDF(ns, 1) != nil {
		t.Error("degenerate inputs")
	}
}

// TestAnalyzeSuffixProperty: if the retained set is exactly a suffix, the
// latest fragment equals the whole readout (property over random splits).
func TestAnalyzeSuffixProperty(t *testing.T) {
	f := func(n uint8, cut uint8) bool {
		total := int(n)%500 + 10
		start := int(cut)%total + 1
		truth := uniform(total, 8)
		var retained []uint64
		for s := start; s <= total; s++ {
			retained = append(retained, uint64(s))
		}
		r, err := Analyze(truth, retained, 0)
		if err != nil {
			return false
		}
		return r.Fragments == 1 &&
			r.LatestFragmentEntries == len(retained) &&
			r.LossRate == 0 &&
			r.RetainedBytes == uint64(8*len(retained))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyGaps(t *testing.T) {
	truth := uniform(1000, 4)
	// One small gap (3 events), one large gap (100 events).
	var retained []uint64
	for s := uint64(1); s <= 1000; s++ {
		if (s >= 10 && s <= 12) || (s >= 500 && s <= 599) {
			continue
		}
		retained = append(retained, s)
	}
	gc := ClassifyGaps(truth, retained)
	if gc.Small != 1 || gc.Large != 1 {
		t.Fatalf("classes: %+v", gc)
	}
	if gc.SmallBytes != 3*4 || gc.LargeBytes != 100*4 {
		t.Fatalf("bytes: %+v", gc)
	}
	if gc.LargestEvents != 100 {
		t.Fatalf("largest: %d", gc.LargestEvents)
	}
	if gc := ClassifyGaps(truth, nil); gc.Small != 0 || gc.Large != 0 {
		t.Fatalf("empty: %+v", gc)
	}
	// A gap of exactly the threshold is small.
	retained = nil
	for s := uint64(1); s <= 100; s++ {
		if s >= 50 && s < 50+SmallGapEvents {
			continue
		}
		retained = append(retained, s)
	}
	if gc := ClassifyGaps(truth[:100], retained); gc.Small != 1 || gc.Large != 0 {
		t.Fatalf("threshold: %+v", gc)
	}
}

func TestPerCore(t *testing.T) {
	truth := uniform(8, 4)
	cores := []uint8{0, 0, 1, 1, 0, 1, 0, 1}
	retained := []uint64{3, 5, 6, 7, 8}
	rows, err := PerCore(truth, cores, retained)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %+v", rows)
	}
	c0, c1 := rows[0], rows[1]
	if c0.Core != 0 || c0.Written != 4 || c0.Retained != 2 || c0.RetainedBytes != 8 {
		t.Fatalf("core 0: %+v", c0)
	}
	if c0.OldestStamp != 5 || c0.NewestStamp != 7 {
		t.Fatalf("core 0 stamps: %+v", c0)
	}
	if c1.Written != 4 || c1.Retained != 3 || c1.OldestStamp != 3 || c1.NewestStamp != 8 {
		t.Fatalf("core 1: %+v", c1)
	}
	if _, err := PerCore(truth, cores[:3], retained); err == nil {
		t.Error("length mismatch")
	}
	if _, err := PerCore(truth, cores, []uint64{99}); err == nil {
		t.Error("bad stamp")
	}
}
