// Package analysis computes the paper's evaluation metrics from a replay
// ground truth and a tracer readout: latest fragment size, loss rate,
// fragment count (Table 2), effectivity ratio (§2.2), retention maps
// (Fig. 1) and recording-latency statistics (geometric mean and CDF,
// Fig. 11).
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// Retention summarizes how much of the written event sequence a tracer
// kept, per the §5 methodology: each written event carries a unique,
// monotonically increasing logic stamp; stamps absent from the readout
// were lost.
type Retention struct {
	// TotalWritten / TotalBytes describe the ground truth.
	TotalWritten int
	TotalBytes   uint64
	// Retained / RetainedBytes describe the readout.
	Retained      int
	RetainedBytes uint64
	// Fragments is the number of maximal runs of consecutive stamps in
	// the readout (Table 2 "# Frag.").
	Fragments int
	// LatestFragmentEntries / LatestFragmentBytes describe the fragment
	// containing the newest retained stamp — the paper's "latest
	// fragment", the usable continuous trace (Table 2 "Latest (MB)").
	LatestFragmentEntries int
	LatestFragmentBytes   uint64
	// LossRate is the fraction of bytes lost within the collected range,
	// oldest retained to newest retained (Table 2 "Loss Rate").
	LossRate float64
	// EffectivityRatio is LatestFragmentBytes over the buffer capacity
	// (§2.2: the proportion of the buffer holding the latest fragment).
	EffectivityRatio float64
}

// Analyze computes Retention. truth[i] is the wire size of stamp i+1;
// retained lists the stamps found in the readout (any order); bufferBytes
// is the tracer's capacity for the effectivity ratio (0 skips it).
func Analyze(truth []uint32, retained []uint64, bufferBytes int) (Retention, error) {
	var r Retention
	r.TotalWritten = len(truth)
	for _, s := range truth {
		r.TotalBytes += uint64(s)
	}
	if len(retained) == 0 {
		return r, nil
	}
	sorted := append([]uint64(nil), retained...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, s := range sorted {
		if s == 0 || s > uint64(len(truth)) {
			return r, fmt.Errorf("analysis: retained stamp %d outside ground truth [1,%d]", s, len(truth))
		}
		if i > 0 && s == sorted[i-1] {
			return r, fmt.Errorf("analysis: duplicate retained stamp %d", s)
		}
	}

	r.Retained = len(sorted)
	for _, s := range sorted {
		r.RetainedBytes += uint64(truth[s-1])
	}

	// Fragments: maximal runs of consecutive stamps.
	r.Fragments = 1
	runStart := 0
	var lastFragEntries int
	var lastFragBytes uint64
	flush := func(endIdx int) {
		lastFragEntries = endIdx - runStart + 1
		lastFragBytes = 0
		for i := runStart; i <= endIdx; i++ {
			lastFragBytes += uint64(truth[sorted[i]-1])
		}
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1]+1 {
			r.Fragments++
			runStart = i
		}
	}
	flush(len(sorted) - 1)
	r.LatestFragmentEntries = lastFragEntries
	r.LatestFragmentBytes = lastFragBytes

	// Loss rate within the collected range [oldest retained, newest
	// retained], measured in bytes.
	lo, hi := sorted[0], sorted[len(sorted)-1]
	var rangeBytes uint64
	for s := lo; s <= hi; s++ {
		rangeBytes += uint64(truth[s-1])
	}
	if rangeBytes > 0 {
		r.LossRate = 1 - float64(r.RetainedBytes)/float64(rangeBytes)
	}
	if bufferBytes > 0 {
		r.EffectivityRatio = float64(r.LatestFragmentBytes) / float64(bufferBytes)
	}
	return r, nil
}

// RetentionMap renders the Fig. 1 view: for the last n written stamps
// (oldest first), whether each is retained.
func RetentionMap(truthLen int, retained []uint64, n int) []bool {
	if n > truthLen {
		n = truthLen
	}
	out := make([]bool, n)
	lo := uint64(truthLen - n + 1)
	for _, s := range retained {
		if s >= lo && s <= uint64(truthLen) {
			out[s-lo] = true
		}
	}
	return out
}

// LatencyStats summarizes per-write recording latencies the way §5.2
// does: geometric mean (robust to preemption outliers) plus percentiles.
type LatencyStats struct {
	Count   int
	GeoMean float64
	P50     int64
	P90     int64
	P99     int64
	Max     int64
}

// Latency computes LatencyStats over nanosecond samples.
func Latency(ns []int64) LatencyStats {
	var st LatencyStats
	st.Count = len(ns)
	if len(ns) == 0 {
		return st
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var logSum float64
	for _, v := range sorted {
		if v < 1 {
			v = 1
		}
		logSum += math.Log(float64(v))
	}
	st.GeoMean = math.Exp(logSum / float64(len(sorted)))
	st.P50 = sorted[len(sorted)/2]
	st.P90 = sorted[len(sorted)*9/10]
	st.P99 = sorted[len(sorted)*99/100]
	st.Max = sorted[len(sorted)-1]
	return st
}

// CDF returns (latencyNs, cumulative fraction) pairs at the given number
// of evenly spaced quantiles, for the Fig. 11 curves.
func CDF(ns []int64, points int) [][2]float64 {
	if len(ns) == 0 || points < 2 {
		return nil
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([][2]float64, points)
	for i := 0; i < points; i++ {
		q := float64(i) / float64(points-1)
		idx := int(q * float64(len(sorted)-1))
		out[i] = [2]float64{float64(sorted[idx]), q * 100}
	}
	return out
}

// Gap describes one missing run in the collected range, for inspection
// tooling.
type Gap struct {
	FromStamp, ToStamp uint64 // inclusive range of missing stamps
	Bytes              uint64
}

// GapClasses summarizes the structure of the losses the way Fig. 1
// distinguishes them: numerous indistinguishable small gaps (a handful of
// events each — easily mistaken for code that simply didn't run) versus
// noticeable large gaps (whole buffer regions overwritten).
type GapClasses struct {
	// Small counts gaps of at most SmallGapEvents missing events; Large
	// counts the rest.
	Small, Large int
	// SmallBytes / LargeBytes are the missing volumes per class.
	SmallBytes, LargeBytes uint64
	// LargestEvents is the biggest single gap in events.
	LargestEvents uint64
}

// SmallGapEvents is the classification threshold: a gap this size or
// smaller is "indistinguishable" from a non-taken branch to a developer
// reading the trace (§1).
const SmallGapEvents = 16

// ClassifyGaps buckets the missing runs.
func ClassifyGaps(truth []uint32, retained []uint64) GapClasses {
	var gc GapClasses
	for _, g := range Gaps(truth, retained) {
		n := g.ToStamp - g.FromStamp + 1
		if n > gc.LargestEvents {
			gc.LargestEvents = n
		}
		if n <= SmallGapEvents {
			gc.Small++
			gc.SmallBytes += g.Bytes
		} else {
			gc.Large++
			gc.LargeBytes += g.Bytes
		}
	}
	return gc
}

// Gaps lists the missing runs between the oldest and newest retained
// stamps, newest last.
func Gaps(truth []uint32, retained []uint64) []Gap {
	if len(retained) == 0 {
		return nil
	}
	sorted := append([]uint64(nil), retained...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var gaps []Gap
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1]+1 {
			continue
		}
		g := Gap{FromStamp: sorted[i-1] + 1, ToStamp: sorted[i] - 1}
		for s := g.FromStamp; s <= g.ToStamp; s++ {
			g.Bytes += uint64(truth[s-1])
		}
		gaps = append(gaps, g)
	}
	return gaps
}

// CoreRetention summarizes one core's share of the ground truth and of
// the readout, plus the age of its oldest retained event relative to the
// core's newest. The Fig. 5 pathology shows up as idle cores retaining
// deep history (large AgeSpan) while busy cores keep only their most
// recent slice.
type CoreRetention struct {
	Core          uint8
	Written       int
	Retained      int
	RetainedBytes uint64
	// OldestStamp/NewestStamp bound the core's retained stamps (0 if none).
	OldestStamp, NewestStamp uint64
}

// PerCore breaks retention down by producing core. cores[i] is the core
// that wrote stamp i+1.
func PerCore(truth []uint32, cores []uint8, retained []uint64) ([]CoreRetention, error) {
	if len(cores) != len(truth) {
		return nil, fmt.Errorf("analysis: cores len %d != truth len %d", len(cores), len(truth))
	}
	byCore := map[uint8]*CoreRetention{}
	get := func(c uint8) *CoreRetention {
		cr := byCore[c]
		if cr == nil {
			cr = &CoreRetention{Core: c}
			byCore[c] = cr
		}
		return cr
	}
	for i := range truth {
		get(cores[i]).Written++
	}
	for _, s := range retained {
		if s == 0 || s > uint64(len(truth)) {
			return nil, fmt.Errorf("analysis: retained stamp %d out of range", s)
		}
		cr := get(cores[s-1])
		cr.Retained++
		cr.RetainedBytes += uint64(truth[s-1])
		if cr.OldestStamp == 0 || s < cr.OldestStamp {
			cr.OldestStamp = s
		}
		if s > cr.NewestStamp {
			cr.NewestStamp = s
		}
	}
	out := make([]CoreRetention, 0, len(byCore))
	for _, cr := range byCore {
		out = append(out, *cr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Core < out[j].Core })
	return out, nil
}
