// Package ring implements the consistent-hash ring that places tenant
// streams onto store shards. It is the distribution tier's only source
// of placement truth: every ingest and every drain asks the ring who
// owns a stream key, and the answer is a pure function of (topology,
// key) — no coordinator state, no rebalancing journal.
//
// The ring hashes each shard onto many virtual nodes (points on a
// 64-bit circle). A key is owned by the first VNodes-many distinct
// shards encountered walking clockwise from the key's hash: index 0 is
// the primary, indexes 1..RF-1 the replicas. Virtual nodes give two
// properties the distributor depends on:
//
//   - balance: with the default 1024 points per shard, every shard owns
//     within a few percent of its fair share of the key space;
//   - bounded movement: adding or removing a shard moves only the arcs
//     that shard gains or loses — about 1/N of the keys — and never
//     reshuffles placement among the surviving shards. Owner sets that
//     did not include a removed shard are provably unchanged, which is
//     what makes drain ("re-place only the moved ranges") cheap.
//
// A Ring is immutable; Add and Remove return derived rings. That makes
// topology changes race-free by construction: the distributor swaps one
// pointer, and every in-flight lookup keeps the topology it started
// with.
package ring

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the default number of virtual nodes per shard. At
// 1024 points the arc-length balance across shards stays within ~10% of
// fair share for any realistic shard count.
const DefaultVNodes = 1024

// Config shapes a Ring.
type Config struct {
	// Replicas is the replication factor: how many distinct shards own
	// each key (default 2, clamped to the shard count).
	Replicas int
	// VNodes is the number of virtual nodes per shard (default
	// DefaultVNodes).
	VNodes int
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	return c
}

// point is one virtual node: a position on the hash circle and the
// index (into Ring.shards) of the shard it belongs to.
type point struct {
	hash  uint64
	shard int32
}

// Ring is an immutable consistent-hash ring. All methods are safe for
// concurrent use.
type Ring struct {
	cfg    Config
	shards []string // sorted, unique
	points []point  // sorted by hash
}

// New builds a ring over the given shard names. Names must be non-empty
// and unique; order does not matter (the ring sorts them, so two rings
// built from the same set are identical).
func New(shards []string, cfg Config) (*Ring, error) {
	cfg = cfg.withDefaults()
	if len(shards) == 0 {
		return nil, fmt.Errorf("ring: no shards")
	}
	sorted := append([]string(nil), shards...)
	sort.Strings(sorted)
	for i, name := range sorted {
		if name == "" {
			return nil, fmt.Errorf("ring: empty shard name")
		}
		if i > 0 && sorted[i-1] == name {
			return nil, fmt.Errorf("ring: duplicate shard %q", name)
		}
	}
	r := &Ring{cfg: cfg, shards: sorted}
	r.points = make([]point, 0, len(sorted)*cfg.VNodes)
	for si, name := range sorted {
		for v := 0; v < cfg.VNodes; v++ {
			h := hash64(name + "#" + strconv.Itoa(v))
			r.points = append(r.points, point{hash: h, shard: int32(si)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Colliding points tie-break on shard name so the ring stays a
		// deterministic function of the shard set.
		return sorted[a.shard] < sorted[b.shard]
	})
	return r, nil
}

// hash64 is FNV-1a over the key bytes followed by a splitmix64-style
// avalanche finalizer. Raw FNV clusters hashes of near-identical inputs
// (vnode labels differ only in a numeric suffix), which skews arc
// ownership by tens of percent; the finalizer diffuses every input bit
// across the word so points land uniformly. Both stages are fixed
// arithmetic — deterministic across processes and platforms, which
// keeps placement stable across restarts.
func hash64(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Shards returns the shard names, sorted.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// RF returns the effective replication factor: the configured replica
// count clamped to the number of shards.
func (r *Ring) RF() int {
	if r.cfg.Replicas > len(r.shards) {
		return len(r.shards)
	}
	return r.cfg.Replicas
}

// VNodes returns the virtual nodes per shard.
func (r *Ring) VNodes() int { return r.cfg.VNodes }

// Lookup returns the RF distinct shards owning key, primary first.
func (r *Ring) Lookup(key string) []string { return r.LookupN(key, r.RF()) }

// LookupN returns up to n distinct shards for key in preference order:
// the walk that Lookup truncates at RF, extended for hedging — the
// (RF+1)-th entry is the shard a write spills to when a replica is down.
// n is clamped to the shard count.
func (r *Ring) LookupN(key string, n int) []string {
	if n > len(r.shards) {
		n = len(r.shards)
	}
	if n <= 0 {
		return nil
	}
	owners := make([]string, 0, n)
	r.walk(key, func(shard string) bool {
		owners = append(owners, shard)
		return len(owners) < n
	})
	return owners
}

// walk visits the distinct shards clockwise from key's hash until fn
// returns false or every shard has been visited.
func (r *Ring) walk(key string, fn func(shard string) bool) {
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var seen uint64 // shard-count is small; a bitmap beats a map here
	var seenOver []bool
	if len(r.shards) > 64 {
		seenOver = make([]bool, len(r.shards))
	}
	visited := 0
	for i := 0; visited < len(r.shards) && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seenOver != nil {
			if seenOver[p.shard] {
				continue
			}
			seenOver[p.shard] = true
		} else {
			if seen&(1<<uint(p.shard)) != 0 {
				continue
			}
			seen |= 1 << uint(p.shard)
		}
		visited++
		if !fn(r.shards[p.shard]) {
			return
		}
	}
}

// Add returns a ring with shard name added. Adding an existing shard is
// an error.
func (r *Ring) Add(name string) (*Ring, error) {
	for _, s := range r.shards {
		if s == name {
			return nil, fmt.Errorf("ring: shard %q already present", name)
		}
	}
	return New(append(r.Shards(), name), r.cfg)
}

// Remove returns a ring with shard name removed. Removing the last
// shard or an unknown shard is an error.
func (r *Ring) Remove(name string) (*Ring, error) {
	rest := make([]string, 0, len(r.shards))
	for _, s := range r.shards {
		if s != name {
			rest = append(rest, s)
		}
	}
	if len(rest) == len(r.shards) {
		return nil, fmt.Errorf("ring: shard %q not in ring", name)
	}
	if len(rest) == 0 {
		return nil, fmt.Errorf("ring: cannot remove the last shard")
	}
	return New(rest, r.cfg)
}

// Ownership returns each shard's fraction of the hash circle it owns as
// primary — the arc-length view of balance that /ring reports.
func (r *Ring) Ownership() map[string]float64 {
	own := make(map[string]float64, len(r.shards))
	if len(r.points) == 0 {
		return own
	}
	for i := range r.points {
		p := r.points[i]
		// The arc [prev, p) belongs to p's shard (keys hash into the arc
		// and walk clockwise to p).
		var arc uint64
		if i == 0 {
			arc = r.points[0].hash + (^uint64(0) - r.points[len(r.points)-1].hash) + 1
		} else {
			arc = p.hash - r.points[i-1].hash
		}
		own[r.shards[p.shard]] += float64(arc)
	}
	const circle = float64(1<<63) * 2
	for name := range own {
		own[name] /= circle
	}
	return own
}
