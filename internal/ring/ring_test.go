package ring

import (
	"fmt"
	"math"
	"testing"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("shard-%02d", i)
	}
	return out
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("tenant-%d/stream-%d", i%7, i)
	}
	return out
}

func mustRing(t *testing.T, shards []string, cfg Config) *Ring {
	t.Helper()
	r, err := New(shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("empty shard set accepted")
	}
	if _, err := New([]string{"a", "a"}, Config{}); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	if _, err := New([]string{""}, Config{}); err == nil {
		t.Fatal("empty shard name accepted")
	}
	r := mustRing(t, []string{"a"}, Config{Replicas: 2})
	if rf := r.RF(); rf != 1 {
		t.Fatalf("RF over 1 shard = %d, want clamped to 1", rf)
	}
	if _, err := r.Remove("a"); err == nil {
		t.Fatal("removing the last shard accepted")
	}
	if _, err := r.Remove("zz"); err == nil {
		t.Fatal("removing an unknown shard accepted")
	}
	if _, err := r.Add("a"); err == nil {
		t.Fatal("re-adding an existing shard accepted")
	}
}

// Placement must be a pure function of (topology, key): two rings built
// from the same shard set — in any order — agree on every lookup.
func TestRingDeterministic(t *testing.T) {
	cfg := Config{Replicas: 2}
	a := mustRing(t, []string{"shard-00", "shard-01", "shard-02", "shard-03"}, cfg)
	b := mustRing(t, []string{"shard-03", "shard-01", "shard-00", "shard-02"}, cfg)
	for _, k := range keys(5000) {
		oa, ob := a.Lookup(k), b.Lookup(k)
		if len(oa) != 2 || len(ob) != 2 {
			t.Fatalf("Lookup(%q) sizes %d/%d, want 2", k, len(oa), len(ob))
		}
		if oa[0] != ob[0] || oa[1] != ob[1] {
			t.Fatalf("Lookup(%q) differs across construction orders: %v vs %v", k, oa, ob)
		}
		if oa[0] == oa[1] {
			t.Fatalf("Lookup(%q) returned duplicate owners %v", k, oa)
		}
	}
}

// Every shard must receive within 10% of its fair share of keys, both
// as primary and across full owner sets, and the arc-length Ownership
// view must agree.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{3, 4, 8} {
		r := mustRing(t, names(n), Config{Replicas: 2})
		const nkeys = 40000
		primary := map[string]int{}
		all := map[string]int{}
		for _, k := range keys(nkeys) {
			owners := r.Lookup(k)
			primary[owners[0]]++
			for _, o := range owners {
				all[o]++
			}
		}
		checkBalance := func(counts map[string]int, total int, what string) {
			t.Helper()
			fair := float64(total) / float64(n)
			for _, name := range r.Shards() {
				dev := math.Abs(float64(counts[name])-fair) / fair
				if dev > 0.10 {
					t.Errorf("n=%d %s: shard %s holds %d of %d keys, %.1f%% off fair share",
						n, what, name, counts[name], total, dev*100)
				}
			}
		}
		checkBalance(primary, nkeys, "primary")
		checkBalance(all, 2*nkeys, "replica-set")

		own := r.Ownership()
		var sum float64
		for _, f := range own {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("n=%d: ownership fractions sum to %v, want 1", n, sum)
		}
		for name, f := range own {
			if dev := math.Abs(f-1/float64(n)) / (1 / float64(n)); dev > 0.10 {
				t.Errorf("n=%d: shard %s owns %.4f of the circle, %.1f%% off fair share", n, name, f, dev*100)
			}
		}
	}
}

// Adding a shard to an N-shard ring must move at most 1/(N+1) + eps of
// primary placements, and every moved key must move TO the new shard —
// placement among the old shards never reshuffles.
func TestRingAddMovesBoundedKeys(t *testing.T) {
	const nkeys = 40000
	for _, n := range []int{3, 4, 8} {
		old := mustRing(t, names(n), Config{Replicas: 2})
		grown, err := old.Add(fmt.Sprintf("shard-%02d", n))
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys(nkeys) {
			a, b := old.Lookup(k)[0], grown.Lookup(k)[0]
			if a != b {
				moved++
				if b != fmt.Sprintf("shard-%02d", n) {
					t.Fatalf("n=%d: key %q moved %s -> %s, not to the new shard", n, k, a, b)
				}
			}
		}
		limit := 1/float64(n+1) + 0.03
		if frac := float64(moved) / nkeys; frac > limit {
			t.Errorf("n=%d: add moved %.3f of keys, limit %.3f", n, frac, limit)
		}
	}
}

// Removing a shard must leave the owner set of every key that did not
// include it exactly unchanged, and keys it owned must re-place onto
// roughly 1/N of the space per surviving shard.
func TestRingRemoveMovesOnlyOwnedRanges(t *testing.T) {
	const nkeys = 40000
	for _, n := range []int{4, 8} {
		old := mustRing(t, names(n), Config{Replicas: 2})
		victim := "shard-01"
		shrunk, err := old.Remove(victim)
		if err != nil {
			t.Fatal(err)
		}
		owned := 0
		for _, k := range keys(nkeys) {
			before, after := old.Lookup(k), shrunk.Lookup(k)
			had := false
			for _, o := range before {
				if o == victim {
					had = true
				}
			}
			if !had {
				if len(before) != len(after) || before[0] != after[0] || before[1] != after[1] {
					t.Fatalf("n=%d: key %q not owned by %s but owners changed %v -> %v",
						n, k, victim, before, after)
				}
				continue
			}
			owned++
			// The survivors keep their slots; exactly one new owner joins.
			kept := map[string]bool{}
			for _, o := range after {
				kept[o] = true
			}
			for _, o := range before {
				if o != victim && !kept[o] {
					t.Fatalf("n=%d: key %q lost surviving owner %s on remove: %v -> %v",
						n, k, o, before, after)
				}
			}
		}
		// RF=2 of N shards: the victim appears in about 2/N of owner sets.
		frac := float64(owned) / nkeys
		expect := 2 / float64(n)
		if math.Abs(frac-expect) > 0.05 {
			t.Errorf("n=%d: victim owned %.3f of keys, expected about %.3f", n, frac, expect)
		}
	}
}

// LookupN beyond RF extends the same walk: the first RF entries equal
// Lookup, and entries stay distinct — the hedging contract.
func TestRingLookupNExtendsWalk(t *testing.T) {
	r := mustRing(t, names(5), Config{Replicas: 2})
	for _, k := range keys(2000) {
		owners := r.Lookup(k)
		ext := r.LookupN(k, 4)
		if len(ext) != 4 {
			t.Fatalf("LookupN(4) returned %d owners", len(ext))
		}
		if ext[0] != owners[0] || ext[1] != owners[1] {
			t.Fatalf("LookupN prefix %v disagrees with Lookup %v", ext[:2], owners)
		}
		seen := map[string]bool{}
		for _, o := range ext {
			if seen[o] {
				t.Fatalf("LookupN(%q) repeated owner %s: %v", k, o, ext)
			}
			seen[o] = true
		}
	}
	if got := r.LookupN("k", 99); len(got) != 5 {
		t.Fatalf("LookupN clamped to %d, want 5", len(got))
	}
}
