package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"btrace/internal/tracer"
)

func TestCursorMatchesSnapshot(t *testing.T) {
	b := mustNew(t, smallOpt())
	p := &tracer.FixedProc{CoreID: 0}
	// Overrun the buffer so the cursor must handle wrapped positions too.
	writeN(t, b, p, 1, 500, 8)

	r := b.NewReader()
	defer r.Close()
	want, _ := r.Snapshot()

	cur := b.NewCursor()
	defer cur.Close()
	got, err := tracer.Drain(cur, 33)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor %d events, snapshot %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Stamp != want[i].Stamp || string(got[i].Payload) != string(want[i].Payload) {
			t.Fatalf("event %d: cursor %+v != snapshot %+v", i, got[i], want[i])
		}
	}
}

func TestCursorReportsMissed(t *testing.T) {
	b := mustNew(t, smallOpt()) // 8 KiB capacity
	p := &tracer.FixedProc{CoreID: 0}
	cur := b.NewCursor()
	defer cur.Close()
	batch := make([]tracer.Entry, 64)

	writeN(t, b, p, 1, 5, 8)
	if n, missed, _ := cur.Next(batch); n != 5 || missed != 0 {
		t.Fatalf("seed read: n=%d missed=%d", n, missed)
	}
	// Overrun the whole buffer several times between reads.
	writeN(t, b, p, 6, 2000, 8)
	var first uint64
	var missed, delivered uint64
	for {
		n, m, err := cur.Next(batch)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if n == 0 {
			break
		}
		if first == 0 {
			first = batch[0].Stamp
		}
		missed += m
		delivered += uint64(n)
	}
	if missed == 0 {
		t.Fatal("expected missed events after overrun")
	}
	// Continuity: missed + delivered accounts for every written stamp,
	// matching Poll's accounting.
	if first != 5+missed+1 {
		t.Fatalf("first delivered %d, missed %d", first, missed)
	}
	if got := 5 + missed + delivered; got != 2005 {
		t.Fatalf("accounted for %d stamps, want 2005", got)
	}
}

// TestCursorArenaReuseSteadyState verifies the load-bearing property of
// the refactor: once warmed up, a cursor following a steady workload does
// not allocate per read.
func TestCursorArenaReuseSteadyState(t *testing.T) {
	b := mustNew(t, smallOpt())
	p := &tracer.FixedProc{CoreID: 0}
	cur := b.NewCursor()
	defer cur.Close()
	batch := make([]tracer.Entry, 256)

	drain := func() {
		for {
			n, _, err := cur.Next(batch)
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if n == 0 {
				return
			}
		}
	}
	// Warm up: fill past capacity twice so the arena reaches its
	// steady-state size.
	writeN(t, b, p, 1, 1000, 8)
	drain()
	writeN(t, b, p, 1001, 1000, 8)
	drain()

	next := uint64(2001)
	allocs := testing.AllocsPerRun(20, func() {
		writeN(t, b, p, next, 100, 8)
		next += 100
		drain()
	})
	// writeN itself allocates the payload slices; the read side must add
	// nothing. Allow the write-side allocations (one per event) plus a
	// small slack, but fail if the read path regresses to O(events).
	if allocs > 110 {
		t.Fatalf("steady-state cursor read allocates %.0f allocs per cycle", allocs)
	}
}

// TestCursorConcurrentPayloadIntegrity races a cursor against live
// writers whose payloads are derived from their stamps: any arena
// mix-up, stale fix-up, or torn speculative copy surfaces as a payload
// that contradicts its own header. Run with -race this also checks the
// copy-then-revalidate discipline survives arena reuse.
func TestCursorConcurrentPayloadIntegrity(t *testing.T) {
	b := mustNew(t, Options{Cores: 4, BlockSize: 256, ActiveBlocks: 16, Ratio: 8})
	var stamp atomic.Uint64
	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := &tracer.FixedProc{CoreID: g, TID: g}
			payload := make([]byte, 16)
			for i := 0; i < 5000; i++ {
				s := stamp.Add(1)
				for j := range payload {
					payload[j] = byte(s) ^ byte(j)
				}
				if err := b.Write(p, &tracer.Entry{Stamp: s, Payload: payload}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(g)
	}
	go func() { wg.Wait(); close(done) }()

	cur := b.NewCursor()
	defer cur.Close()
	batch := make([]tracer.Entry, 128)
	var last, delivered, missed uint64
	read := func() {
		n, m, err := cur.Next(batch)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		missed += m
		for i := 0; i < n; i++ {
			e := &batch[i]
			if e.Stamp <= last {
				t.Fatalf("stamp %d after %d", e.Stamp, last)
			}
			last = e.Stamp
			if len(e.Payload) != 16 {
				t.Fatalf("stamp %d: payload %d bytes", e.Stamp, len(e.Payload))
			}
			for j, c := range e.Payload {
				if c != byte(e.Stamp)^byte(j) {
					t.Fatalf("stamp %d: payload byte %d corrupted (%#x)", e.Stamp, j, c)
				}
			}
			delivered++
		}
	}
	for {
		select {
		case <-done:
			for prev := delivered - 1; delivered != prev; {
				prev = delivered
				read()
			}
			total := stamp.Load()
			if delivered+missed > total {
				t.Fatalf("delivered %d + missed %d > written %d", delivered, missed, total)
			}
			if delivered == 0 {
				t.Fatal("nothing delivered")
			}
			return
		default:
			read()
		}
	}
}

// BenchmarkReadPathPoll is the slice-snapshot baseline the streaming
// refactor replaces: each poll re-materializes the readout and allocates
// O(events).
func BenchmarkReadPathPoll(b *testing.B) {
	benchReadPath(b, func(buf *Buffer) func() int {
		r := buf.NewReader()
		b.Cleanup(r.Close)
		return func() int {
			es, _ := r.Poll()
			n := 0
			for i := range es {
				n += len(es[i].Payload)
			}
			return n
		}
	})
}

// BenchmarkReadPathCursor is the streaming replacement: the same
// workload consumed through the arena-backed cursor.
func BenchmarkReadPathCursor(b *testing.B) {
	benchReadPath(b, func(buf *Buffer) func() int {
		cur := buf.NewCursor()
		b.Cleanup(func() { cur.Close() })
		batch := make([]tracer.Entry, 512)
		return func() int {
			n := 0
			for {
				k, _, err := cur.Next(batch)
				if err != nil {
					b.Fatal(err)
				}
				if k == 0 {
					return n
				}
				for i := 0; i < k; i++ {
					n += len(batch[i].Payload)
				}
			}
		}
	})
}

// benchReadPath measures steady-state incremental consumption: every
// iteration writes a fresh burst and drains it, so both variants decode
// the same traffic and differ only in their allocation discipline.
func benchReadPath(b *testing.B, mk func(*Buffer) func() int) {
	buf, err := New(Options{Cores: 4, BlockSize: 4096, ActiveBlocks: 64, Ratio: 8})
	if err != nil {
		b.Fatal(err)
	}
	p := &tracer.FixedProc{CoreID: 0}
	payload := make([]byte, 64)
	var stamp uint64
	writeBurst := func(n int) {
		for i := 0; i < n; i++ {
			stamp++
			if err := buf.Write(p, &tracer.Entry{Stamp: stamp, Payload: payload}); err != nil {
				b.Fatal(err)
			}
		}
	}
	read := mk(buf)
	// Warm up the consumer (and the cursor's arena) before measuring.
	writeBurst(2000)
	read()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		writeBurst(500)
		b.StartTimer()
		if read() == 0 {
			b.Fatal("empty read")
		}
	}
}
