package core

import (
	"slices"
	"sync/atomic"

	"btrace/internal/tracer"
)

// Reader is a registered consumer of a Buffer. Readers never block
// producers: a filled block is copied speculatively and the copy is
// discarded if the metadata shows the block was reclaimed for a newer
// round during the read (§4.3). Readers participate in epoch-based
// reclamation so a concurrent shrink can tell when they have left the
// reclaimed memory (§4.4); producers need no epochs thanks to implicit
// reclaiming.
//
// A Reader is not safe for concurrent use by multiple goroutines.
type Reader struct {
	b *Buffer
	// epoch is even when idle, odd while inside a snapshot.
	epoch atomic.Uint64
	// scratch is the reusable block copy buffer.
	scratch []byte
	// lastPolled is the highest stamp delivered by Poll.
	lastPolled uint64
}

// NewReader registers and returns a consumer for b.
func (b *Buffer) NewReader() *Reader {
	r := &Reader{b: b, scratch: make([]byte, b.opt.BlockSize)}
	b.readersMu.Lock()
	b.readers = append(b.readers, r)
	b.readersMu.Unlock()
	return r
}

// Close unregisters the reader.
func (r *Reader) Close() {
	b := r.b
	b.readersMu.Lock()
	for i, rr := range b.readers {
		if rr == r {
			b.readers = append(b.readers[:i], b.readers[i+1:]...)
			break
		}
	}
	b.readersMu.Unlock()
}

// BlockInfo describes one position of the ring as seen by a snapshot; the
// analysis pipeline and cmd/btrace-inspect use it to explain gaps.
type BlockInfo struct {
	// Pos is the global block position.
	Pos uint64
	// State classifies what the snapshot found at Pos.
	State BlockState
	// Entries is the number of events recovered from the block.
	Entries int
	// Bytes is the number of payload-carrying bytes recovered.
	Bytes int
}

// BlockState classifies a block position during a snapshot.
type BlockState uint8

// Block states reported in BlockInfo.
const (
	// BlockRead means the block's events were recovered.
	BlockRead BlockState = iota
	// BlockActive means the block is the core's current block and was
	// readable (all entries confirmed).
	BlockActive
	// BlockBusy means the block had unconfirmed entries and was not read.
	BlockBusy
	// BlockSkipped means the position was sacrificed by block skipping.
	BlockSkipped
	// BlockOverwritten means a newer round reclaimed the block during or
	// before the read.
	BlockOverwritten
	// BlockInvalid means the block's content did not validate (stale or
	// reclaimed data).
	BlockInvalid
)

// String returns the state name.
func (s BlockState) String() string {
	switch s {
	case BlockRead:
		return "read"
	case BlockActive:
		return "active"
	case BlockBusy:
		return "busy"
	case BlockSkipped:
		return "skipped"
	case BlockOverwritten:
		return "overwritten"
	default:
		return "invalid"
	}
}

// arena is the reusable decode storage of a snapshot: the entry slice,
// one packed byte buffer holding every payload, and the per-position
// block infos. Reusing an arena across snapshots turns the read path's
// per-poll cost from O(events) allocations into zero steady-state
// allocations (the streaming-cursor design this repo's read pipeline is
// built on).
//
// Payloads are appended to buf during the fill, which may reallocate it;
// entries therefore record offsets (spans) and the Payload slice headers
// are fixed up only once the fill is complete (fixPayloads).
type arena struct {
	entries []tracer.Entry
	spans   []span // parallel to entries; start<0 means nil payload
	buf     []byte
	infos   []BlockInfo
}

type span struct{ start, end int }

// reset empties the arena for the next snapshot, keeping capacity.
func (a *arena) reset() {
	a.entries = a.entries[:0]
	a.spans = a.spans[:0]
	a.buf = a.buf[:0]
	a.infos = a.infos[:0]
}

// fixPayloads rewrites each entry's Payload to point into buf. Must run
// after the fill (buf no longer grows) and before sorting (spans are
// parallel to entries by index).
func (a *arena) fixPayloads() {
	for i := range a.entries {
		sp := a.spans[i]
		if sp.start < 0 {
			a.entries[i].Payload = nil
			continue
		}
		a.entries[i].Payload = a.buf[sp.start:sp.end:sp.end]
	}
}

// Snapshot reads every event currently recoverable from the buffer,
// oldest position first, together with per-position block information.
// It is safe to run concurrently with producers. The returned slices are
// freshly allocated and owned by the caller; the streaming read path
// (Buffer.NewCursor) reuses an arena instead and is what steady-state
// consumers should poll.
func (r *Reader) Snapshot() ([]tracer.Entry, []BlockInfo) {
	var ar arena
	r.snapshotInto(&ar)
	return ar.entries, ar.infos
}

// snapshotInto resets ar and fills it with every recoverable event,
// sorted by stamp, plus per-position infos. It is the shared engine
// behind Snapshot (fresh arena) and Cursor (persistent arena).
func (r *Reader) snapshotInto(ar *arena) {
	r.epoch.Add(1)
	defer r.epoch.Add(1)
	ar.reset()

	b := r.b
	gw := b.global.Load()
	ratio, g := unpackGlobal(gw)
	a := uint64(b.opt.ActiveBlocks)
	n := uint64(ratio) * a

	start := a // positions 0..A-1 are pseudo-round placeholders
	if g > n && g-n > start {
		start = g - n
	}

	for pos := start; pos < g; pos++ {
		info := BlockInfo{Pos: pos}
		from := len(ar.entries)
		info.State = r.readPosInto(ar, pos, ratio, n)
		info.Entries = len(ar.entries) - from
		for i := from; i < len(ar.entries); i++ {
			info.Bytes += ar.entries[i].WireSize()
		}
		ar.infos = append(ar.infos, info)
	}
	ar.fixPayloads()
	sortByStamp(ar.entries)
	b.ctrs.snapshotted()
}

// readPosInto recovers the events of global position pos into ar,
// classifying the outcome. ratio and n are the snapshot's ratio and live
// block count. On any non-read outcome nothing is appended.
func (r *Reader) readPosInto(ar *arena, pos uint64, ratio int, n uint64) BlockState {
	b := r.b
	bs := uint32(b.opt.BlockSize)
	m, rr := b.metaOf(pos)
	cRnd, cCnt := unpackMeta(m.confirmed.Load())

	switch {
	case cRnd == rr && b.cBytes(cCnt) == bs:
		// Current, filled round: validate via blockOff after the copy.
		boRnd, boIdx := unpackMeta(m.blockOff.Load())
		if boRnd != rr {
			return BlockOverwritten
		}
		speculativeCopy(r.scratch, b.block(boIdx))
		if bo2 := m.blockOff.Load(); bo2 != packMeta(rr, boIdx) {
			// A newer round claimed the metadata mid-copy; the data may
			// be torn (§4.3: abandon and move on).
			return BlockOverwritten
		}
		if !parseBlockInto(ar, r.scratch[:bs], pos) {
			return BlockInvalid
		}
		return BlockRead

	case cRnd == rr:
		// Current, still-open round: readable only if every allocated
		// byte is confirmed (§4.3).
		aw := m.allocated.Load()
		aRnd, aPos := unpackMeta(aw)
		if aRnd != rr || aPos != b.cBytes(cCnt) || aPos > bs {
			return BlockBusy
		}
		boRnd, boIdx := unpackMeta(m.blockOff.Load())
		if boRnd != rr {
			return BlockOverwritten
		}
		speculativeCopy(r.scratch[:aPos], b.block(boIdx)[:aPos])
		if m.allocated.Load() != aw || m.confirmed.Load() != packMeta(rr, cCnt) {
			return BlockBusy // a writer appended mid-copy; skip
		}
		if !parseBlockInto(ar, r.scratch[:aPos], pos) {
			return BlockInvalid
		}
		return BlockActive

	case cRnd > rr:
		// The metadata moved past rr. With ratio > 1 the round's data
		// block may still be intact (it is only reused every ratio
		// rounds); recover it if the global position proves no reuse
		// could have been granted yet.
		idx := b.dataIdx(pos, ratio)
		speculativeCopy(r.scratch, b.block(idx))
		gw2 := b.global.Load()
		ratio2, g2 := unpackGlobal(gw2)
		if ratio2 != ratio || pos+n < g2 {
			return BlockOverwritten
		}
		if !parseBlockInto(ar, r.scratch[:bs], pos) {
			return BlockInvalid
		}
		return BlockRead

	default:
		// cRnd < rr: the position was granted but never locked — the
		// skipping mechanism sacrificed it (§3.4) — or it is simply
		// beyond the writers' progress.
		return BlockSkipped
	}
}

// parseBlockInto decodes the records of one block copy into ar,
// validating that the block header belongs to pos. It returns false
// (appending nothing) when the content does not belong to pos (stale or
// reclaimed data). Payload bytes are copied out of the scratch block
// into the arena's packed buffer; only spans are recorded here, the
// slice headers are fixed up by the caller after the fill.
func parseBlockInto(ar *arena, blk []byte, pos uint64) bool {
	first, err := tracer.DecodeRecord(blk)
	if err != nil {
		return false
	}
	switch first.Kind {
	case tracer.KindBlockHeader:
		if first.Pos != pos {
			return false
		}
	case tracer.KindSkip:
		return true // sacrificed block, legitimately empty
	default:
		return false
	}
	// Decode records in place (no intermediate []Record), salvaging the
	// parseable prefix the way DecodeAll does.
	src := blk[first.Size:]
	for len(src) >= tracer.Align {
		rec, err := tracer.DecodeRecord(src)
		if err != nil {
			break
		}
		if rec.Kind == tracer.KindEvent {
			e := rec.Event
			sp := span{start: -1}
			if e.Payload != nil {
				sp.start = len(ar.buf)
				ar.buf = append(ar.buf, e.Payload...)
				sp.end = len(ar.buf)
			}
			e.Payload = nil // rewritten by fixPayloads
			ar.entries = append(ar.entries, e)
			ar.spans = append(ar.spans, sp)
		}
		src = src[rec.Size:]
	}
	return true
}

// sortByStamp orders entries by logic stamp: block granting order already
// gives a coarse oldest-to-newest order, but entries of concurrently
// active blocks interleave. slices.SortFunc keeps the steady-state read
// path allocation-free (sort.Slice allocates its reflect-based swapper).
func sortByStamp(es []tracer.Entry) {
	slices.SortFunc(es, func(a, b tracer.Entry) int {
		switch {
		case a.Stamp < b.Stamp:
			return -1
		case a.Stamp > b.Stamp:
			return 1
		default:
			return 0
		}
	})
}

// ReadAll implements the quiescent snapshot used by the tracer.Tracer
// interface: it registers a temporary reader, snapshots, and unregisters.
func (b *Buffer) ReadAll() ([]tracer.Entry, error) {
	r := b.NewReader()
	defer r.Close()
	es, _ := r.Snapshot()
	return es, nil
}
