package core

import (
	"sort"
	"sync/atomic"

	"btrace/internal/tracer"
)

// Reader is a registered consumer of a Buffer. Readers never block
// producers: a filled block is copied speculatively and the copy is
// discarded if the metadata shows the block was reclaimed for a newer
// round during the read (§4.3). Readers participate in epoch-based
// reclamation so a concurrent shrink can tell when they have left the
// reclaimed memory (§4.4); producers need no epochs thanks to implicit
// reclaiming.
//
// A Reader is not safe for concurrent use by multiple goroutines.
type Reader struct {
	b *Buffer
	// epoch is even when idle, odd while inside a snapshot.
	epoch atomic.Uint64
	// scratch is the reusable block copy buffer.
	scratch []byte
	// lastPolled is the highest stamp delivered by Poll.
	lastPolled uint64
}

// NewReader registers and returns a consumer for b.
func (b *Buffer) NewReader() *Reader {
	r := &Reader{b: b, scratch: make([]byte, b.opt.BlockSize)}
	b.readersMu.Lock()
	b.readers = append(b.readers, r)
	b.readersMu.Unlock()
	return r
}

// Close unregisters the reader.
func (r *Reader) Close() {
	b := r.b
	b.readersMu.Lock()
	for i, rr := range b.readers {
		if rr == r {
			b.readers = append(b.readers[:i], b.readers[i+1:]...)
			break
		}
	}
	b.readersMu.Unlock()
}

// BlockInfo describes one position of the ring as seen by a snapshot; the
// analysis pipeline and cmd/btrace-inspect use it to explain gaps.
type BlockInfo struct {
	// Pos is the global block position.
	Pos uint64
	// State classifies what the snapshot found at Pos.
	State BlockState
	// Entries is the number of events recovered from the block.
	Entries int
	// Bytes is the number of payload-carrying bytes recovered.
	Bytes int
}

// BlockState classifies a block position during a snapshot.
type BlockState uint8

// Block states reported in BlockInfo.
const (
	// BlockRead means the block's events were recovered.
	BlockRead BlockState = iota
	// BlockActive means the block is the core's current block and was
	// readable (all entries confirmed).
	BlockActive
	// BlockBusy means the block had unconfirmed entries and was not read.
	BlockBusy
	// BlockSkipped means the position was sacrificed by block skipping.
	BlockSkipped
	// BlockOverwritten means a newer round reclaimed the block during or
	// before the read.
	BlockOverwritten
	// BlockInvalid means the block's content did not validate (stale or
	// reclaimed data).
	BlockInvalid
)

// String returns the state name.
func (s BlockState) String() string {
	switch s {
	case BlockRead:
		return "read"
	case BlockActive:
		return "active"
	case BlockBusy:
		return "busy"
	case BlockSkipped:
		return "skipped"
	case BlockOverwritten:
		return "overwritten"
	default:
		return "invalid"
	}
}

// Snapshot reads every event currently recoverable from the buffer,
// oldest position first, together with per-position block information.
// It is safe to run concurrently with producers.
func (r *Reader) Snapshot() ([]tracer.Entry, []BlockInfo) {
	r.epoch.Add(1)
	defer r.epoch.Add(1)

	b := r.b
	gw := b.global.Load()
	ratio, g := unpackGlobal(gw)
	a := uint64(b.opt.ActiveBlocks)
	n := uint64(ratio) * a

	start := a // positions 0..A-1 are pseudo-round placeholders
	if g > n && g-n > start {
		start = g - n
	}

	var (
		entries []tracer.Entry
		infos   []BlockInfo
	)
	for pos := start; pos < g; pos++ {
		info := BlockInfo{Pos: pos}
		es, state := r.readPos(pos, ratio, n)
		info.State = state
		info.Entries = len(es)
		for i := range es {
			info.Bytes += es[i].WireSize()
		}
		entries = append(entries, es...)
		infos = append(infos, info)
	}
	sortByStamp(entries)
	return entries, infos
}

// readPos recovers the events of global position pos, classifying the
// outcome. ratio and n are the snapshot's ratio and live block count.
func (r *Reader) readPos(pos uint64, ratio int, n uint64) ([]tracer.Entry, BlockState) {
	b := r.b
	bs := uint32(b.opt.BlockSize)
	m, rr := b.metaOf(pos)
	cRnd, cCnt := unpackMeta(m.confirmed.Load())

	switch {
	case cRnd == rr && cCnt == bs:
		// Current, filled round: validate via blockOff after the copy.
		boRnd, boIdx := unpackMeta(m.blockOff.Load())
		if boRnd != rr {
			return nil, BlockOverwritten
		}
		speculativeCopy(r.scratch, b.block(boIdx))
		if bo2 := m.blockOff.Load(); bo2 != packMeta(rr, boIdx) {
			// A newer round claimed the metadata mid-copy; the data may
			// be torn (§4.3: abandon and move on).
			return nil, BlockOverwritten
		}
		es, ok := parseBlock(r.scratch[:bs], pos)
		if !ok {
			return nil, BlockInvalid
		}
		return es, BlockRead

	case cRnd == rr:
		// Current, still-open round: readable only if every allocated
		// byte is confirmed (§4.3).
		aw := m.allocated.Load()
		aRnd, aPos := unpackMeta(aw)
		if aRnd != rr || aPos != cCnt || aPos > bs {
			return nil, BlockBusy
		}
		boRnd, boIdx := unpackMeta(m.blockOff.Load())
		if boRnd != rr {
			return nil, BlockOverwritten
		}
		speculativeCopy(r.scratch[:aPos], b.block(boIdx)[:aPos])
		if m.allocated.Load() != aw || m.confirmed.Load() != packMeta(rr, cCnt) {
			return nil, BlockBusy // a writer appended mid-copy; skip
		}
		es, ok := parseBlock(r.scratch[:aPos], pos)
		if !ok {
			return nil, BlockInvalid
		}
		return es, BlockActive

	case cRnd > rr:
		// The metadata moved past rr. With ratio > 1 the round's data
		// block may still be intact (it is only reused every ratio
		// rounds); recover it if the global position proves no reuse
		// could have been granted yet.
		idx := b.dataIdx(pos, ratio)
		speculativeCopy(r.scratch, b.block(idx))
		gw2 := b.global.Load()
		ratio2, g2 := unpackGlobal(gw2)
		if ratio2 != ratio || pos+n < g2 {
			return nil, BlockOverwritten
		}
		es, ok := parseBlock(r.scratch[:bs], pos)
		if !ok {
			return nil, BlockInvalid
		}
		return es, BlockRead

	default:
		// cRnd < rr: the position was granted but never locked — the
		// skipping mechanism sacrificed it (§3.4) — or it is simply
		// beyond the writers' progress.
		return nil, BlockSkipped
	}
}

// parseBlock decodes the records of one block copy, validating that the
// block header belongs to pos. It returns ok=false when the content does
// not belong to pos (stale or reclaimed data).
func parseBlock(blk []byte, pos uint64) ([]tracer.Entry, bool) {
	recs, _ := tracer.DecodeAll(blk)
	if len(recs) == 0 {
		return nil, false
	}
	switch recs[0].Kind {
	case tracer.KindBlockHeader:
		if recs[0].Pos != pos {
			return nil, false
		}
	case tracer.KindSkip:
		return nil, true // sacrificed block, legitimately empty
	default:
		return nil, false
	}
	var es []tracer.Entry
	for _, rec := range recs[1:] {
		if rec.Kind == tracer.KindEvent {
			e := rec.Event
			if e.Payload != nil {
				e.Payload = append([]byte(nil), e.Payload...)
			}
			es = append(es, e)
		}
	}
	return es, true
}

// sortByStamp orders entries by logic stamp: block granting order already
// gives a coarse oldest-to-newest order, but entries of concurrently
// active blocks interleave.
func sortByStamp(es []tracer.Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].Stamp < es[j].Stamp })
}

// ReadAll implements the quiescent snapshot used by the tracer.Tracer
// interface: it registers a temporary reader, snapshots, and unregisters.
func (b *Buffer) ReadAll() ([]tracer.Entry, error) {
	r := b.NewReader()
	defer r.Close()
	es, _ := r.Snapshot()
	return es, nil
}
