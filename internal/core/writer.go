package core

import (
	"fmt"
	"runtime"

	"btrace/internal/tracer"
)

// Write records e on behalf of the thread running in p. The common case is
// a single fetch-and-add on the core's current metadata block (§4.1); when
// the block is exhausted the thread advances through the slow path (§4.2).
// Write never blocks on other threads: preempted writers holding
// unconfirmed entries cause candidates to be skipped, not waited for
// (§3.4).
func (b *Buffer) Write(p tracer.Proc, e *tracer.Entry) error {
	size := uint32(e.WireSize())
	bs := uint32(b.opt.BlockSize)
	if size > bs-headerSize {
		return fmt.Errorf("%w: entry %d B, block payload capacity %d B",
			tracer.ErrTooLarge, size, bs-headerSize)
	}
	core := p.Core()
	for {
		lw := b.locals[core].v.Load()
		_, pos := unpackGlobal(lw)
		m, r := b.metaOf(pos)

		// Fast path: claim size bytes with one FAA (Fig. 8a). The FAA may
		// land in a newer round if this thread's view of the core-local
		// assignment went stale (it was scheduled out and other threads
		// advanced the core); the stolen space is repaired with dummy
		// data below, preserving the exactly-once confirmation of every
		// byte in the block.
		newA := m.allocated.Add(uint64(size))
		aRnd, aEnd := unpackMeta(newA)
		aPos := aEnd - size

		switch {
		case aRnd == r && aEnd <= bs:
			// Claimed [aPos, aEnd) of the core's current block.
			boRnd, boIdx := unpackMeta(m.blockOff.Load())
			if boRnd != aRnd {
				// Unreachable by protocol (blockOff is stored before the
				// allocated word is reset to round r); confirm blindly so
				// the round cannot wedge, and surface the anomaly.
				m.confirmed.Add(uint64(size))
				return fmt.Errorf("tracer: btrace internal: blockOff round %d != allocated round %d", boRnd, aRnd)
			}
			blk := b.block(boIdx)
			p.MaybePreempt(tracer.PreemptBeforeCopy)
			if _, err := tracer.EncodeEvent(blk[aPos:aEnd], e); err != nil {
				return err
			}
			p.MaybePreempt(tracer.PreemptBeforeConfirm)
			// The record count piggybacks on the confirmation CAS via
			// evInc (meta.go), so the fast path maintains no counter of
			// its own; blocks too large for the bit budget fall back to a
			// core-sharded add.
			b.confirm(m, aRnd, size, b.evInc, "event")
			if b.evInc == 0 {
				b.ctrs.wroteFallback(core)
			}
			return nil

		case aRnd == r && aPos < bs:
			// The claim straddles the block end (Fig. 8c): this thread
			// owns the unusable tail [aPos, bs) exactly once. Fill it
			// with a dummy record, confirm it, then advance and retry.
			b.fillTail(m, aRnd, aPos, bs, "straddle")
			b.advance(p, core, lw)

		case aRnd == r:
			// aPos >= bs: the block was already full. Advance and retry.
			b.advance(p, core, lw)

		default:
			// Stale round. If the FAA claimed real space ([aPos, bs) of
			// round aRnd's block), repair it with dummy data so the round
			// still confirms exactly BlockSize bytes.
			if aPos < bs {
				n := aEnd
				if n > bs {
					n = bs
				}
				b.fillTail(m, aRnd, aPos, n, "repair")
				b.ctrs.repair()
			}
			b.advance(p, core, lw)
		}
	}
}

// confirm adds n confirmed bytes to round rnd of m, verifying the round
// matches and the count cannot exceed BlockSize. ev is added on top of the
// byte delta — b.evInc to count an event record in the packed high bits of
// the count field, 0 for filler (headers, dummies). The violations checked
// here indicate a protocol bug (a byte range confirmed twice or a round
// completing while bytes were outstanding); they are unreachable if the
// accounting is correct, and panicking keeps corruption from propagating
// silently.
func (b *Buffer) confirm(m *meta, rnd, n, ev uint32, site string) {
	bs := uint32(b.opt.BlockSize)
	for {
		c := m.confirmed.Load()
		cRnd, cCnt := unpackMeta(c)
		if cRnd != rnd {
			panic(fmt.Sprintf("core: confirm(%s): round moved %d -> %d with %d bytes outstanding", site, rnd, cRnd, n))
		}
		if b.cBytes(cCnt)+n > bs {
			panic(fmt.Sprintf("core: confirm(%s): over-confirmation %d+%d > %d in round %d", site, b.cBytes(cCnt), n, bs, rnd))
		}
		if m.confirmed.CompareAndSwap(c, packMeta(rnd, cCnt+n+ev)) {
			return
		}
		b.ctrs.casRetry()
	}
}

// fillTail writes a dummy record over [from, to) of round rnd's data block
// and confirms those bytes. The caller must own that range exclusively.
func (b *Buffer) fillTail(m *meta, rnd, from, to uint32, site string) {
	boRnd, boIdx := unpackMeta(m.blockOff.Load())
	if boRnd == rnd {
		blk := b.block(boIdx)
		tracer.EncodeDummy(blk[from:to], int(to-from))
	}
	b.ctrs.dummy(to - from)
	b.confirm(m, rnd, to-from, 0, site)
}

// advance moves core's assignment to a fresh data block (slow path, §4.2
// and Fig. 9). prevLocal is the packed core-local word the caller started
// from; if the core's assignment has already moved past it (another thread
// advanced first), advance returns immediately and the caller retries the
// fast path with the new assignment.
func (b *Buffer) advance(p tracer.Proc, core int, prevLocal uint64) {
	bs := uint32(b.opt.BlockSize)
	b.ctrs.advance()
	for fails := 0; ; fails++ {
		if b.locals[core].v.Load() != prevLocal {
			return // someone else advanced this core
		}
		if fails > 0 && fails%b.opt.ActiveBlocks == 0 {
			// A full lap of candidates failed: every metadata block is
			// held up by preempted writers. Burning more candidates only
			// destroys retained data; yield the processor so the
			// preempted writers can confirm (on a real device the kernel
			// timeslices the skipping producer the same way).
			runtime.Gosched()
		}

		// Step 1: FAA the global ratio_and_pos to nominate a candidate.
		g := b.global.Add(1) - 1
		ratio, pos := unpackGlobal(g)
		m, r := b.metaOf(pos)

		// Step 2: the lagging block A positions behind the candidate
		// shares this metadata block. If its round is still open, close
		// it (§3.2) so newer traces cannot land in soon-overwritten
		// space, then double-check for a preempted writer.
		cw := m.confirmed.Load()
		cRnd, cCnt := unpackMeta(cw)
		if cRnd >= r {
			// A wrap-around producer already consumed this candidate.
			b.ctrs.casRetry()
			continue
		}
		if b.cBytes(cCnt) < bs {
			b.closeRound(m, cRnd)
			cw = m.confirmed.Load()
			cRnd, cCnt = unpackMeta(cw)
			if cRnd >= r {
				b.ctrs.casRetry()
				continue
			}
			if b.cBytes(cCnt) < bs {
				if b.opt.BlockOnStragglers {
					// Ablation mode: wait for the preempted writer the
					// way a blocking global-buffer tracer would.
					b.ctrs.blockedWait()
					for {
						cRnd2, cCnt2 := unpackMeta(m.confirmed.Load())
						if cRnd2 != cRnd || b.cBytes(cCnt2) >= bs {
							break
						}
						runtime.Gosched()
					}
					cw = m.confirmed.Load()
					cRnd, cCnt = unpackMeta(cw)
					if cRnd >= r || b.cBytes(cCnt) < bs {
						b.ctrs.casRetry()
						continue
					}
				} else {
					// A preempted writer still holds unconfirmed space in
					// the previous round: skip the candidate instead of
					// blocking (§3.4), sacrificing one block for
					// availability.
					b.markSkip(pos, ratio, m, cRnd)
					b.ctrs.skip()
					continue
				}
			}
		}

		// Step 3: lock the candidate by CASing confirmed from the fully
		// confirmed old round to (r, 0). The expected value is the word
		// loaded above: once the byte count reaches BlockSize no confirm
		// can touch the word again, so it is frozen until some producer's
		// lock CAS replaces it. Failure means a wrap-around producer
		// locked it first. Winning the CAS retires round cRnd: its packed
		// record count is harvested into the retirement accumulators
		// before the bits vanish.
		if !m.confirmed.CompareAndSwap(cw, packMeta(r, 0)) {
			b.ctrs.casRetry()
			continue
		}
		b.ctrs.roundRetired(cRnd, uint64(b.cEvents(cCnt)))

		// Step 4: record the round's data block and write its header.
		idx := b.dataIdx(pos, ratio)
		m.blockOff.Store(packMeta(r, idx))
		blk := b.block(idx)
		m.hdrMu.Lock()
		tracer.EncodeBlockHeader(blk, pos)
		m.hdrMu.Unlock()

		// Step 5: reset allocated to (r, headerSize). Stale-round FAAs
		// may race the reset; the read-CAS loop absorbs them.
		for {
			a := m.allocated.Load()
			if m.allocated.CompareAndSwap(a, packMeta(r, headerSize)) {
				break
			}
			b.ctrs.casRetry()
		}

		// Step 6: confirm the header, making the block consumable once
		// the remaining bytes are confirmed. roundStarted is counted
		// first so the derived event-byte total only ever lags (never
		// overshoots) the true value.
		b.ctrs.roundStarted()
		b.confirm(m, r, headerSize, 0, "header")

		// The block is now assigned but not yet published to the core: a
		// preemption here is exactly the "assigned but not prepared"
		// hazard of §3.4 that other threads handle by skipping.
		p.MaybePreempt(tracer.PreemptBeforeConfirm)

		// Step 7: publish to the core-local ratio_and_pos.
		if b.locals[core].v.CompareAndSwap(prevLocal, packGlobal(ratio, pos)) {
			b.acquired[core].v.Add(1)
			return
		}
		// Another thread of this core advanced first (Fig. 9 footnote):
		// sacrifice the block we won by dummy-filling it, then use theirs.
		b.closeRound(m, r)
		return
	}
}

// closeRound force-closes round rndOld of m: it CASes the allocated
// position to BlockSize, fills the unallocated tail of the round's data
// block with a dummy record, and confirms the filled bytes. It is a no-op
// if the round already reached BlockSize or moved on. Exactly one closer
// wins the CAS, so every byte of the block is confirmed exactly once.
func (b *Buffer) closeRound(m *meta, rndOld uint32) {
	bs := uint32(b.opt.BlockSize)
	for {
		a := m.allocated.Load()
		aRnd, aPos := unpackMeta(a)
		if aRnd != rndOld || aPos >= bs {
			return
		}
		if m.allocated.CompareAndSwap(a, packMeta(rndOld, bs)) {
			b.fillTail(m, rndOld, aPos, bs, "close")
			b.ctrs.close()
			return
		}
		b.ctrs.casRetry()
	}
}

// markSkip best-effort writes a skip marker into the sacrificed candidate
// data block so offline inspection can tell a skipped block from stale
// data. The marker is only written when the candidate block is provably
// disjoint from the previous round's block (a preempted writer may still
// be writing there); consumers never rely on the marker — they detect
// skips from the metadata round.
//
// The write happens under hdrMu, re-checking that the metadata block is
// still in prevRnd: once a wrap-around producer locks a newer round, a
// late marker could otherwise scribble the header it just wrote into the
// same data block (reachable when rnd%ratio collides, e.g. across a
// resize).
func (b *Buffer) markSkip(pos uint64, ratio int, m *meta, prevRnd uint32) {
	idx := b.dataIdx(pos, ratio)
	m.hdrMu.Lock()
	defer m.hdrMu.Unlock()
	cRnd, _ := unpackMeta(m.confirmed.Load())
	boRnd, boIdx := unpackMeta(m.blockOff.Load())
	if cRnd == prevRnd && boRnd == prevRnd && boIdx != idx {
		tracer.EncodeSkip(b.block(idx), pos)
	}
}
