package core

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"btrace/internal/tracer"
)

// Buffer is a BTrace ring: one contiguous memory region partitioned into
// data blocks that are dynamically assigned to cores. A Buffer is safe for
// concurrent use by any number of producing threads (each identifying its
// virtual core through a tracer.Proc) and any number of registered
// Readers.
type Buffer struct {
	opt Options

	// buf is the reserved backing store, ActiveBlocks*MaxRatio blocks.
	buf []byte
	// metas are the A metadata blocks.
	metas []meta
	// global is the packed (ratio, pos) word producers FAA to advance.
	global atomic.Uint64
	// locals[c] is core c's packed (ratio, pos) assignment.
	locals []paddedWord
	// acquired[c] counts the blocks core c has acquired — the dynamic
	// assignment the paper's title promises: demanding cores draw more
	// blocks from the shared pool.
	acquired []paddedWord

	// Event-count packing for the confirmed word (see meta.go): event
	// confirmations add evInc on top of their byte count, so the record
	// count of a round rides the confirmation CAS the fast path performs
	// anyway. cntMask extracts the byte part, evShift the event part.
	// evInc == 0 disables in-word counting (blocks too large for the bit
	// budget); the writer then falls back to a sharded per-write counter.
	evInc   uint32
	evShift uint32
	cntMask uint32

	// ctrs is the self-observability state (internal/obs): slow-path
	// counters plus the round-retirement accumulators the in-word event
	// counts are harvested into. Nil when Options.DisableStats requests
	// the uninstrumented baseline; every update site is nil-safe.
	ctrs *bufCounters

	// resizeMu serializes Resize and Reset.
	resizeMu sync.Mutex

	// readers tracks registered consumers for epoch-based reclamation of
	// shrunk memory (§4.4); producers need no such tracking thanks to
	// implicit reclaiming (§3.3).
	readersMu sync.Mutex
	readers   []*Reader
}

// New creates a Buffer from opt. The zero-value Options is invalid; use
// OptionsForBudget for budget-driven configuration.
func New(opt Options) (*Buffer, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	b := &Buffer{
		opt:      opt,
		buf:      make([]byte, opt.MaxCapacity()),
		metas:    make([]meta, opt.ActiveBlocks),
		locals:   make([]paddedWord, opt.Cores),
		acquired: make([]paddedWord, opt.Cores),
	}
	b.evShift, b.evInc, b.cntMask = confirmLayout(opt.BlockSize)
	b.initState()
	if !opt.DisableStats {
		b.ctrs = newBufCounters(opt.Cores)
		b.ctrs.acquired = b.acquired
		b.ctrs.capacity.Set(int64(b.Capacity()))
		b.ctrs.metas = b.metas
		b.ctrs.evShift = b.evShift
		b.ctrs.cntMask = b.cntMask
		b.ctrs.blockSize = uint64(opt.BlockSize)
		b.ctrs.headerSize = headerSize
		b.registerObs()
	}
	return b, nil
}

// confirmLayout splits the confirmed word's 32-bit count field into an
// event-count part and a byte part for blocks of size bs. The byte part
// needs bits.Len(bs) bits (counts run 0..bs inclusive); whatever remains
// holds the round's record count. A round fits at most bs/EventHeaderSize
// records (every record is at least one event header), so in-word counting
// is enabled only when that maximum fits the remaining bits — true for
// every block size up to 128 KiB, and in particular the 4 KiB paper
// default. Oversized blocks get shift 0: counting falls back to a sharded
// per-write counter and the byte part spans the whole field.
func confirmLayout(bs int) (shift, inc, mask uint32) {
	shift = uint32(bits.Len32(uint32(bs)))
	maxEvents := uint32(bs / tracer.EventHeaderSize)
	if shift >= 32 || maxEvents >= 1<<(32-shift) {
		return 0, 0, ^uint32(0)
	}
	return shift, 1 << shift, 1<<shift - 1
}

// cBytes extracts the confirmed-byte part of a confirmed count field.
func (b *Buffer) cBytes(cnt uint32) uint32 { return cnt & b.cntMask }

// cEvents extracts the record-count part of a confirmed count field.
func (b *Buffer) cEvents(cnt uint32) uint32 {
	if b.evInc == 0 {
		return 0
	}
	return cnt >> b.evShift
}

// initState resets all metadata to the initial configuration: every
// metadata block sits at pseudo-round 0, fully confirmed, so the first
// producer on each core immediately takes the slow path and acquires a
// fresh block at rnd >= 1.
func (b *Buffer) initState() {
	a := uint64(b.opt.ActiveBlocks)
	bs := uint32(b.opt.BlockSize)
	for i := range b.metas {
		m := &b.metas[i]
		m.allocated.Store(packMeta(0, bs))
		m.confirmed.Store(packMeta(0, bs))
		m.blockOff.Store(packMeta(0, uint32(i)))
	}
	// Global position starts at A (rnd 1); positions 0..A-1 are the
	// pseudo-round placeholders.
	b.global.Store(packGlobal(b.opt.Ratio, a))
	for c := range b.locals {
		b.locals[c].v.Store(packGlobal(b.opt.Ratio, uint64(c)))
		b.acquired[c].v.Store(0)
	}
}

// Options returns the normalized options the buffer was created with
// (Ratio reflects the initial ratio; see Ratio() for the current one).
func (b *Buffer) Options() Options { return b.opt }

// Ratio returns the current ratio (data blocks per metadata block).
func (b *Buffer) Ratio() int {
	r, _ := unpackGlobal(b.global.Load())
	return r
}

// Capacity returns the current live capacity in bytes.
func (b *Buffer) Capacity() int {
	return b.Ratio() * b.opt.ActiveBlocks * b.opt.BlockSize
}

// MaxEntryPayload returns the largest payload a single event may carry.
func (b *Buffer) MaxEntryPayload() int {
	max := b.opt.BlockSize - headerSize - tracer.EventHeaderSize
	if max > tracer.MaxPayload {
		max = tracer.MaxPayload
	}
	return max
}

// block returns the byte slice of data block idx.
func (b *Buffer) block(idx uint32) []byte {
	off := int(idx) * b.opt.BlockSize
	return b.buf[off : off+b.opt.BlockSize : off+b.opt.BlockSize]
}

// dataIdx maps a global position to its data block index under ratio.
func (b *Buffer) dataIdx(pos uint64, ratio int) uint32 {
	a := uint64(b.opt.ActiveBlocks)
	rnd := pos / a
	return uint32((rnd%uint64(ratio))*a + pos%a)
}

// metaOf returns the metadata block and round for a global position.
func (b *Buffer) metaOf(pos uint64) (*meta, uint32) {
	a := uint64(b.opt.ActiveBlocks)
	return &b.metas[pos%a], uint32(pos / a)
}

// Stats returns a snapshot of the buffer's counters (all zero when the
// buffer was opened with Options.DisableStats). Writes and BytesWritten
// are derived from the round accounting — retired rounds plus a scan of
// the live metadata words — so the record fast path never maintains a
// dedicated counter; the derivation is exact at quiescence.
func (b *Buffer) Stats() tracer.Stats {
	c := b.ctrs
	if c == nil {
		return tracer.Stats{}
	}
	writes, eventBytes := c.eventTotals()
	return tracer.Stats{
		Writes:        writes,
		BytesWritten:  eventBytes,
		DummyBytes:    c.dummyBytes.Load(),
		SkippedBlocks: c.skipped.Load(),
		ClosedBlocks:  c.closed.Load(),
		Advancements:  c.advancements.Load(),
		CASRetries:    c.casRetries.Load(),
	}
}

// Repairs returns the number of stale-round allocation repairs performed
// (space claimed in a newer round by a thread holding an outdated core
// assignment, immediately filled with dummy data; see writer.go).
func (b *Buffer) Repairs() uint64 {
	if b.ctrs == nil {
		return 0
	}
	return b.ctrs.repairs.Load()
}

// BlockedWaits returns how many times a producer waited for a preempted
// writer instead of skipping; always zero unless Options.BlockOnStragglers
// enables the §3.4 ablation mode.
func (b *Buffer) BlockedWaits() uint64 {
	if b.ctrs == nil {
		return 0
	}
	return b.ctrs.blockedWaits.Load()
}

// BlocksAcquired returns, per core, how many data blocks the core has
// acquired from the shared pool — the observable form of the paper's
// dynamic block assignment: cores producing more traces draw
// proportionally more blocks.
func (b *Buffer) BlocksAcquired() []uint64 {
	out := make([]uint64, len(b.acquired))
	for c := range b.acquired {
		out[c] = b.acquired[c].v.Load()
	}
	return out
}

// Reset discards all data and restores the initial state. It must not run
// concurrently with writers.
func (b *Buffer) Reset() {
	b.resizeMu.Lock()
	defer b.resizeMu.Unlock()
	for i := range b.buf {
		b.buf[i] = 0
	}
	b.initState()
	b.ctrs.reset()
}
