package core

import (
	"sync"
	"sync/atomic"

	"btrace/internal/tracer"
)

// Buffer is a BTrace ring: one contiguous memory region partitioned into
// data blocks that are dynamically assigned to cores. A Buffer is safe for
// concurrent use by any number of producing threads (each identifying its
// virtual core through a tracer.Proc) and any number of registered
// Readers.
type Buffer struct {
	opt Options

	// buf is the reserved backing store, ActiveBlocks*MaxRatio blocks.
	buf []byte
	// metas are the A metadata blocks.
	metas []meta
	// global is the packed (ratio, pos) word producers FAA to advance.
	global atomic.Uint64
	// locals[c] is core c's packed (ratio, pos) assignment.
	locals []paddedWord
	// acquired[c] counts the blocks core c has acquired — the dynamic
	// assignment the paper's title promises: demanding cores draw more
	// blocks from the shared pool.
	acquired []paddedWord

	// stats counters (atomic).
	writes       atomic.Uint64
	bytesWritten atomic.Uint64
	dummyBytes   atomic.Uint64
	skipped      atomic.Uint64
	closed       atomic.Uint64
	advancements atomic.Uint64
	casRetries   atomic.Uint64
	repairs      atomic.Uint64
	blockedWaits atomic.Uint64

	// resizeMu serializes Resize and Reset.
	resizeMu sync.Mutex

	// readers tracks registered consumers for epoch-based reclamation of
	// shrunk memory (§4.4); producers need no such tracking thanks to
	// implicit reclaiming (§3.3).
	readersMu sync.Mutex
	readers   []*Reader
}

// New creates a Buffer from opt. The zero-value Options is invalid; use
// OptionsForBudget for budget-driven configuration.
func New(opt Options) (*Buffer, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	b := &Buffer{
		opt:      opt,
		buf:      make([]byte, opt.MaxCapacity()),
		metas:    make([]meta, opt.ActiveBlocks),
		locals:   make([]paddedWord, opt.Cores),
		acquired: make([]paddedWord, opt.Cores),
	}
	b.initState()
	return b, nil
}

// initState resets all metadata to the initial configuration: every
// metadata block sits at pseudo-round 0, fully confirmed, so the first
// producer on each core immediately takes the slow path and acquires a
// fresh block at rnd >= 1.
func (b *Buffer) initState() {
	a := uint64(b.opt.ActiveBlocks)
	bs := uint32(b.opt.BlockSize)
	for i := range b.metas {
		m := &b.metas[i]
		m.allocated.Store(packMeta(0, bs))
		m.confirmed.Store(packMeta(0, bs))
		m.blockOff.Store(packMeta(0, uint32(i)))
	}
	// Global position starts at A (rnd 1); positions 0..A-1 are the
	// pseudo-round placeholders.
	b.global.Store(packGlobal(b.opt.Ratio, a))
	for c := range b.locals {
		b.locals[c].v.Store(packGlobal(b.opt.Ratio, uint64(c)))
		b.acquired[c].v.Store(0)
	}
}

// Options returns the normalized options the buffer was created with
// (Ratio reflects the initial ratio; see Ratio() for the current one).
func (b *Buffer) Options() Options { return b.opt }

// Ratio returns the current ratio (data blocks per metadata block).
func (b *Buffer) Ratio() int {
	r, _ := unpackGlobal(b.global.Load())
	return r
}

// Capacity returns the current live capacity in bytes.
func (b *Buffer) Capacity() int {
	return b.Ratio() * b.opt.ActiveBlocks * b.opt.BlockSize
}

// MaxEntryPayload returns the largest payload a single event may carry.
func (b *Buffer) MaxEntryPayload() int {
	max := b.opt.BlockSize - headerSize - tracer.EventHeaderSize
	if max > tracer.MaxPayload {
		max = tracer.MaxPayload
	}
	return max
}

// block returns the byte slice of data block idx.
func (b *Buffer) block(idx uint32) []byte {
	off := int(idx) * b.opt.BlockSize
	return b.buf[off : off+b.opt.BlockSize : off+b.opt.BlockSize]
}

// dataIdx maps a global position to its data block index under ratio.
func (b *Buffer) dataIdx(pos uint64, ratio int) uint32 {
	a := uint64(b.opt.ActiveBlocks)
	rnd := pos / a
	return uint32((rnd%uint64(ratio))*a + pos%a)
}

// metaOf returns the metadata block and round for a global position.
func (b *Buffer) metaOf(pos uint64) (*meta, uint32) {
	a := uint64(b.opt.ActiveBlocks)
	return &b.metas[pos%a], uint32(pos / a)
}

// Stats returns a snapshot of the buffer's counters.
func (b *Buffer) Stats() tracer.Stats {
	return tracer.Stats{
		Writes:        b.writes.Load(),
		BytesWritten:  b.bytesWritten.Load(),
		DummyBytes:    b.dummyBytes.Load(),
		SkippedBlocks: b.skipped.Load(),
		ClosedBlocks:  b.closed.Load(),
		Advancements:  b.advancements.Load(),
		CASRetries:    b.casRetries.Load(),
	}
}

// Repairs returns the number of stale-round allocation repairs performed
// (space claimed in a newer round by a thread holding an outdated core
// assignment, immediately filled with dummy data; see writer.go).
func (b *Buffer) Repairs() uint64 { return b.repairs.Load() }

// BlockedWaits returns how many times a producer waited for a preempted
// writer instead of skipping; always zero unless Options.BlockOnStragglers
// enables the §3.4 ablation mode.
func (b *Buffer) BlockedWaits() uint64 { return b.blockedWaits.Load() }

// BlocksAcquired returns, per core, how many data blocks the core has
// acquired from the shared pool — the observable form of the paper's
// dynamic block assignment: cores producing more traces draw
// proportionally more blocks.
func (b *Buffer) BlocksAcquired() []uint64 {
	out := make([]uint64, len(b.acquired))
	for c := range b.acquired {
		out[c] = b.acquired[c].v.Load()
	}
	return out
}

// Reset discards all data and restores the initial state. It must not run
// concurrently with writers.
func (b *Buffer) Reset() {
	b.resizeMu.Lock()
	defer b.resizeMu.Unlock()
	for i := range b.buf {
		b.buf[i] = 0
	}
	b.initState()
	b.writes.Store(0)
	b.bytesWritten.Store(0)
	b.dummyBytes.Store(0)
	b.skipped.Store(0)
	b.closed.Store(0)
	b.advancements.Store(0)
	b.casRetries.Store(0)
	b.repairs.Store(0)
	b.blockedWaits.Store(0)
}
