package core

import (
	"testing"
	"testing/quick"

	"btrace/internal/tracer"
)

func mustNew(t testing.TB, opt Options) *Buffer {
	t.Helper()
	b, err := New(opt)
	if err != nil {
		t.Fatalf("New(%+v): %v", opt, err)
	}
	return b
}

// smallOpt is a tiny configuration convenient for tests: 4 cores, 8
// metadata blocks, 256-byte blocks, 4 rounds of blocks (8 KiB capacity).
func smallOpt() Options {
	return Options{Cores: 4, BlockSize: 256, ActiveBlocks: 8, Ratio: 4}
}

func writeN(t testing.TB, b *Buffer, p tracer.Proc, startStamp uint64, n, payload int) {
	t.Helper()
	for i := 0; i < n; i++ {
		e := &tracer.Entry{
			Stamp:   startStamp + uint64(i),
			TS:      uint64(i),
			Core:    uint8(p.Core()),
			TID:     uint32(p.Thread()),
			Payload: make([]byte, payload),
		}
		if err := b.Write(p, e); err != nil {
			t.Fatalf("Write stamp %d: %v", e.Stamp, err)
		}
	}
}

func stamps(es []tracer.Entry) []uint64 {
	out := make([]uint64, len(es))
	for i := range es {
		out[i] = es[i].Stamp
	}
	return out
}

func TestNewValidation(t *testing.T) {
	bad := []Options{
		{},                     // no cores
		{Cores: -1, Ratio: 1},  // negative cores
		{Cores: 300, Ratio: 1}, // too many cores
		{Cores: 4, BlockSize: 100, Ratio: 1, ActiveBlocks: 4},     // unaligned block
		{Cores: 4, BlockSize: 64, Ratio: 1, ActiveBlocks: 4},      // block too small
		{Cores: 4, BlockSize: 1 << 30, Ratio: 1, ActiveBlocks: 4}, // block too large
		{Cores: 4, ActiveBlocks: 2, Ratio: 1},                     // A < cores
		{Cores: 4, ActiveBlocks: 8, Ratio: 0},                     // no ratio
		{Cores: 4, ActiveBlocks: 8, Ratio: 4, MaxRatio: 2},        // max < ratio
		{Cores: 4, ActiveBlocks: 8, Ratio: 1, MaxRatio: 1 << 20},  // max too large
	}
	for i, opt := range bad {
		if _, err := New(opt); err == nil {
			t.Errorf("case %d (%+v): expected error", i, opt)
		}
	}
	b := mustNew(t, smallOpt())
	if b.Capacity() != 8*4*256 {
		t.Errorf("Capacity = %d, want %d", b.Capacity(), 8*4*256)
	}
	if b.Ratio() != 4 {
		t.Errorf("Ratio = %d, want 4", b.Ratio())
	}
}

func TestOptionsDefaults(t *testing.T) {
	opt, err := Options{Cores: 12, Ratio: 16}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if opt.BlockSize != DefaultBlockSize {
		t.Errorf("BlockSize default = %d", opt.BlockSize)
	}
	if opt.ActiveBlocks != 12*DefaultActivePerCore {
		t.Errorf("ActiveBlocks default = %d", opt.ActiveBlocks)
	}
	if opt.MaxRatio != 16 {
		t.Errorf("MaxRatio default = %d", opt.MaxRatio)
	}
}

func TestOptionsForBudget(t *testing.T) {
	// The paper's evaluation setup: 12 MB, 12 cores, 4 KiB blocks.
	opt, err := OptionsForBudget(12<<20, 12, 4096, 16)
	if err != nil {
		t.Fatal(err)
	}
	if opt.ActiveBlocks != 192 {
		t.Errorf("A = %d, want 192", opt.ActiveBlocks)
	}
	if opt.Ratio != 16 {
		t.Errorf("Ratio = %d, want 16", opt.Ratio)
	}
	if opt.Capacity() != 12<<20 {
		t.Errorf("Capacity = %d, want %d", opt.Capacity(), 12<<20)
	}
	// A small budget shrinks A to preserve a usable ratio (at least 4
	// rounds of blocks), keeping the 1-A/N effectivity ceiling sane.
	opt, err = OptionsForBudget(16*4096, 4, 4096, 16)
	if err != nil {
		t.Fatal(err)
	}
	if opt.ActiveBlocks != 4 || opt.Ratio != 4 {
		t.Errorf("degraded: A=%d ratio=%d, want 4/4", opt.ActiveBlocks, opt.Ratio)
	}
	// Budget below one block per core fails.
	if _, err := OptionsForBudget(2*4096, 4, 4096, 16); err == nil {
		t.Error("tiny budget: expected error")
	}
}

func TestPackUnpackQuick(t *testing.T) {
	f := func(ratio uint16, pos uint64) bool {
		r, p := unpackGlobal(packGlobal(int(ratio), pos&posMask))
		return r == int(ratio) && p == pos&posMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(rnd, val uint32) bool {
		r, v := unpackMeta(packMeta(rnd, val))
		return r == rnd && v == val
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDataIdxMapping(t *testing.T) {
	b := mustNew(t, smallOpt()) // A=8, ratio=4, N=32
	seen := map[uint32]uint64{}
	for pos := uint64(8); pos < 8+32; pos++ {
		idx := b.dataIdx(pos, 4)
		if idx >= 32 {
			t.Fatalf("dataIdx(%d) = %d out of range", pos, idx)
		}
		if prev, dup := seen[idx]; dup {
			t.Fatalf("dataIdx collision: pos %d and %d -> %d", prev, pos, idx)
		}
		seen[idx] = pos
		// The data block must share the position's metadata index mod A.
		if idx%8 != uint32(pos%8) {
			t.Fatalf("dataIdx(%d) = %d not congruent to metaIdx", pos, idx)
		}
	}
	// Wrap: pos+N maps to the same data block.
	for pos := uint64(8); pos < 16; pos++ {
		if b.dataIdx(pos, 4) != b.dataIdx(pos+32, 4) {
			t.Fatalf("pos %d and %d should share a block", pos, pos+32)
		}
	}
}

func TestWriteReadSingleEntry(t *testing.T) {
	b := mustNew(t, smallOpt())
	p := &tracer.FixedProc{CoreID: 1, TID: 7}
	e := &tracer.Entry{Stamp: 42, TS: 1000, Core: 1, TID: 7, Category: 3, Level: 2, Payload: []byte("payload!")}
	if err := b.Write(p, e); err != nil {
		t.Fatal(err)
	}
	es, err := b.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 1 {
		t.Fatalf("got %d entries, want 1", len(es))
	}
	g := es[0]
	if g.Stamp != 42 || g.TS != 1000 || g.Core != 1 || g.TID != 7 || g.Category != 3 || g.Level != 2 {
		t.Fatalf("entry mismatch: %+v", g)
	}
	if string(g.Payload) != "payload!" {
		t.Fatalf("payload = %q", g.Payload)
	}
	st := b.Stats()
	if st.Writes != 1 || st.BytesWritten != uint64(e.WireSize()) {
		t.Fatalf("stats: %+v", st)
	}
}

func TestWriteTooLarge(t *testing.T) {
	b := mustNew(t, smallOpt())
	p := &tracer.FixedProc{}
	e := &tracer.Entry{Payload: make([]byte, 256)}
	if err := b.Write(p, e); err == nil {
		t.Fatal("expected ErrTooLarge")
	}
	if b.MaxEntryPayload() != 256-headerSize-tracer.EventHeaderSize {
		t.Fatalf("MaxEntryPayload = %d", b.MaxEntryPayload())
	}
}

func TestSequentialFillAndWrap(t *testing.T) {
	b := mustNew(t, smallOpt()) // capacity 8 KiB
	p := &tracer.FixedProc{CoreID: 0}
	const n = 1000 // ~40 KiB of 40-byte entries: wraps several times
	writeN(t, b, p, 0, n, 8)
	es, err := b.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) == 0 {
		t.Fatal("no entries retained")
	}
	ss := stamps(es)
	// Retained stamps must be strictly increasing and contiguous: a
	// single producer never leaves interior gaps (only the oldest data is
	// overwritten).
	for i := 1; i < len(ss); i++ {
		if ss[i] != ss[i-1]+1 {
			t.Fatalf("gap between retained stamps %d and %d", ss[i-1], ss[i])
		}
	}
	if ss[len(ss)-1] != n-1 {
		t.Fatalf("newest stamp = %d, want %d", ss[len(ss)-1], n-1)
	}
	// With A=8 active blocks out of 32, at least (N-A)/N of the capacity
	// must hold the latest contiguous entries.
	minEntries := (32 - 8) * (256 - headerSize) / 40 / 2
	if len(es) < minEntries {
		t.Fatalf("retained %d entries, expected at least %d", len(es), minEntries)
	}
}

func TestResetClearsState(t *testing.T) {
	b := mustNew(t, smallOpt())
	p := &tracer.FixedProc{CoreID: 2}
	writeN(t, b, p, 0, 100, 8)
	b.Reset()
	es, err := b.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 0 {
		t.Fatalf("after Reset: %d entries", len(es))
	}
	if st := b.Stats(); st.Writes != 0 || st.BytesWritten != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
	// The buffer must be reusable.
	writeN(t, b, p, 500, 10, 8)
	es, _ = b.ReadAll()
	if len(es) != 10 || es[0].Stamp != 500 {
		t.Fatalf("after reuse: %d entries, first %v", len(es), es)
	}
}

func TestBlockStateString(t *testing.T) {
	for s, want := range map[BlockState]string{
		BlockRead: "read", BlockActive: "active", BlockBusy: "busy",
		BlockSkipped: "skipped", BlockOverwritten: "overwritten", BlockInvalid: "invalid",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestAdapterRegistration(t *testing.T) {
	tr, err := tracer.New(TracerName, 1<<20, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "btrace" {
		t.Errorf("Name = %q", tr.Name())
	}
	if tr.TotalBytes() != 1<<20 {
		t.Errorf("TotalBytes = %d, want %d", tr.TotalBytes(), 1<<20)
	}
	p := &tracer.FixedProc{}
	if err := tr.Write(p, &tracer.Entry{Stamp: 1}); err != nil {
		t.Fatal(err)
	}
	es, err := tr.ReadAll()
	if err != nil || len(es) != 1 {
		t.Fatalf("ReadAll: %d entries, err %v", len(es), err)
	}
}

// TestBlocksFollowDemand verifies the paper's headline mechanism: cores
// producing more traces dynamically acquire proportionally more blocks
// from the shared pool.
func TestBlocksFollowDemand(t *testing.T) {
	b := mustNew(t, Options{Cores: 4, BlockSize: 256, ActiveBlocks: 8, Ratio: 8})
	// Core 0 writes 10x more than core 3.
	p0 := &tracer.FixedProc{CoreID: 0, TID: 1}
	p3 := &tracer.FixedProc{CoreID: 3, TID: 2}
	writeN(t, b, p0, 0, 2000, 8)
	writeN(t, b, p3, 10000, 200, 8)
	acq := b.BlocksAcquired()
	if acq[0] < 5*acq[3] {
		t.Errorf("block assignment does not follow demand: %v", acq)
	}
	if acq[1] != 0 || acq[2] != 0 {
		t.Errorf("idle cores acquired blocks: %v", acq)
	}
	total := acq[0] + acq[3]
	if st := b.Stats(); st.Advancements < total {
		t.Errorf("advancements %d < acquisitions %d", st.Advancements, total)
	}
}
