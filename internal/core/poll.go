package core

import "btrace/internal/tracer"

// Poll returns the events that became recoverable since the previous Poll
// (or since the Reader was created), oldest first. It is the incremental
// consumption mode a daemon collector uses to follow a live trace (§2.1:
// "a daemon collector dumps the buffer"): each call snapshots the ring
// speculatively and returns only events with stamps above the last
// delivered one, so repeated polling streams the trace without blocking
// producers.
//
// Events overwritten between polls are lost to the poller (the tracer is
// an overwrite-mode ring, not a queue); the second return value reports
// how many stamps were skipped that way.
func (r *Reader) Poll() (events []tracer.Entry, missed uint64) {
	es, _ := r.Snapshot()
	// Snapshot returns stamp-sorted entries; binary search the resume
	// point.
	lo, hi := 0, len(es)
	for lo < hi {
		mid := (lo + hi) / 2
		if es[mid].Stamp <= r.lastPolled {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	es = es[lo:]
	if len(es) == 0 {
		return nil, 0
	}
	if r.lastPolled != 0 && es[0].Stamp > r.lastPolled+1 {
		missed = es[0].Stamp - r.lastPolled - 1
	}
	r.lastPolled = es[len(es)-1].Stamp
	return es, missed
}
