package core

import (
	"runtime"
	"sync/atomic"

	"btrace/internal/obs"
)

// bufCounters is the buffer's self-observability state: every stat the
// block lifecycle maintains, backed by obs primitives instead of shared
// atomics. The record fast path touches no counter at all: per-round
// record counts ride the confirmation CAS in the packed high bits of the
// confirmed word (meta.go), the slow path harvests them into the
// retirement accumulators when a round is locked away, and the write and
// event-byte totals are derived on demand from those accumulators plus a
// scan of the live metadata words. The derivation only ever lags the true
// value mid-flight and is exact at quiescence; eventTotals latches a
// running maximum so the published series stay monotonic.
//
// bufCounters is allocated separately from the Buffer and is what the
// obs registry's collector closure captures: the Buffer itself stays
// finalizable, and when it is collected the finalizer folds these
// counters into the registry's retired totals so process-lifetime series
// never go backwards. (The metas alias pins the metadata array — not the
// Buffer — until the fold drops the closure.)
//
// All methods are nil-safe: a Buffer opened with Options.DisableStats
// has a nil bufCounters and skips every update (the uninstrumented
// baseline BenchmarkObsOverhead measures against).
type bufCounters struct {
	// writes is the fallback record counter, used only when the block
	// size is too large for in-word counting (Buffer.evInc == 0); sharded
	// by core id so producers on different cores never bounce a line.
	writes *obs.Counter

	// Round retirement accounting (slow path): every locked round
	// contributes its harvested record count and BlockSize bytes; every
	// initialized round contributes one header.
	retiredEvents *obs.Counter
	retiredRounds *obs.Counter
	roundsStarted *obs.Counter

	// Monotonic latches for the derived totals.
	writesPub atomic.Uint64
	bytesPub  atomic.Uint64

	// Derivation inputs, fixed at New: the buffer's metadata array (its
	// backing array is independent of the Buffer allocation) and the
	// confirmed-word layout.
	metas      []meta
	evShift    uint32
	cntMask    uint32
	blockSize  uint64
	headerSize uint64

	// Slow paths (single padded shard each).
	dummyBytes   *obs.Counter
	skipped      *obs.Counter
	closed       *obs.Counter
	advancements *obs.Counter
	casRetries   *obs.Counter
	repairs      *obs.Counter
	blockedWaits *obs.Counter

	// Lifecycle beyond the write path.
	resizes        *obs.Counter
	reclaims       *obs.Counter
	reclaimedBytes *obs.Counter
	verifyFailures *obs.Counter

	// Read path.
	snapshots   *obs.Counter
	readEntries *obs.Counter
	readMissed  *obs.Counter

	// capacity mirrors the live capacity so the collector never has to
	// reach back into the Buffer.
	capacity obs.Gauge

	// acquired aliases the buffer's per-core acquisition words (their
	// backing array is independent of the Buffer allocation).
	acquired []paddedWord
}

func newBufCounters(cores int) *bufCounters {
	return &bufCounters{
		writes:         obs.NewCounter(cores),
		retiredEvents:  obs.NewCounter(1),
		retiredRounds:  obs.NewCounter(1),
		roundsStarted:  obs.NewCounter(1),
		dummyBytes:     obs.NewCounter(1),
		skipped:        obs.NewCounter(1),
		closed:         obs.NewCounter(1),
		advancements:   obs.NewCounter(1),
		casRetries:     obs.NewCounter(1),
		repairs:        obs.NewCounter(1),
		blockedWaits:   obs.NewCounter(1),
		resizes:        obs.NewCounter(1),
		reclaims:       obs.NewCounter(1),
		reclaimedBytes: obs.NewCounter(1),
		verifyFailures: obs.NewCounter(1),
		snapshots:      obs.NewCounter(1),
		readEntries:    obs.NewCounter(1),
		readMissed:     obs.NewCounter(1),
	}
}

// wroteFallback counts one record on the producing core's private shard.
// Only reached when the block size defeats in-word counting; the default
// configurations never take it.
func (c *bufCounters) wroteFallback(core int) {
	if c != nil {
		c.writes.IncAt(core)
	}
}

// roundRetired harvests a locked-away round: its packed record count and
// its BlockSize bytes move into the retirement accumulators. prevRnd 0 is
// the initState pseudo-round — fully confirmed on paper but never
// written — and contributes nothing.
func (c *bufCounters) roundRetired(prevRnd uint32, events uint64) {
	if c == nil || prevRnd == 0 {
		return
	}
	c.retiredRounds.Inc()
	if events > 0 {
		c.retiredEvents.Add(events)
	}
}

// roundStarted counts a round lock/initialization (one confirmed header).
func (c *bufCounters) roundStarted() {
	if c != nil {
		c.roundsStarted.Inc()
	}
}

// eventTotals derives the record count and event-byte total. Retired
// accumulators are read before the live scan and the overhead counters
// after it, so every interleaving with concurrent round retirement
// under-counts rather than over-counts; the latches then keep the
// published values monotonic. Exact at quiescence.
func (c *bufCounters) eventTotals() (writes, eventBytes uint64) {
	if c == nil {
		return 0, 0
	}
	retEv := c.retiredEvents.Load()
	retRounds := c.retiredRounds.Load()
	var liveEv, liveBytes uint64
	for i := range c.metas {
		rnd, cnt := unpackMeta(c.metas[i].confirmed.Load())
		if rnd == 0 {
			continue // pseudo-round: confirmed by construction, never written
		}
		liveBytes += uint64(cnt & c.cntMask)
		if c.evShift != 0 {
			liveEv += uint64(cnt >> c.evShift)
		}
	}
	overhead := c.roundsStarted.Load()*c.headerSize + c.dummyBytes.Load()
	writes = retEv + liveEv + c.writes.Load()
	if gross := retRounds*c.blockSize + liveBytes; gross > overhead {
		eventBytes = gross - overhead
	}
	return latchMax(&c.writesPub, writes), latchMax(&c.bytesPub, eventBytes)
}

// latchMax raises cell to at least v and returns the latched maximum.
func latchMax(cell *atomic.Uint64, v uint64) uint64 {
	for {
		old := cell.Load()
		if v <= old {
			return old
		}
		if cell.CompareAndSwap(old, v) {
			return v
		}
	}
}

func (c *bufCounters) dummy(n uint32) {
	if c != nil {
		c.dummyBytes.Add(uint64(n))
	}
}

func (c *bufCounters) skip() {
	if c != nil {
		c.skipped.Inc()
	}
}

func (c *bufCounters) close() {
	if c != nil {
		c.closed.Inc()
	}
}

func (c *bufCounters) advance() {
	if c != nil {
		c.advancements.Inc()
	}
}

func (c *bufCounters) casRetry() {
	if c != nil {
		c.casRetries.Inc()
	}
}

func (c *bufCounters) repair() {
	if c != nil {
		c.repairs.Inc()
	}
}

func (c *bufCounters) blockedWait() {
	if c != nil {
		c.blockedWaits.Inc()
	}
}

// resized records a Resize: the new live capacity and, on shrink, the
// number of bytes reclaimed.
func (c *bufCounters) resized(newCapacity, reclaimedBytes int) {
	if c == nil {
		return
	}
	c.resizes.Inc()
	c.capacity.Set(int64(newCapacity))
	if reclaimedBytes > 0 {
		c.reclaims.Inc()
		c.reclaimedBytes.Add(uint64(reclaimedBytes))
	}
}

func (c *bufCounters) verified(violations int) {
	if c != nil && violations > 0 {
		c.verifyFailures.Add(uint64(violations))
	}
}

// snapshotted records one read-path snapshot/refill pass.
func (c *bufCounters) snapshotted() {
	if c != nil {
		c.snapshots.Inc()
	}
}

// read records a cursor batch delivery.
func (c *bufCounters) read(n int, missed uint64) {
	if c == nil {
		return
	}
	c.readEntries.Add(uint64(n))
	if missed > 0 {
		c.readMissed.Add(missed)
	}
}

func (c *bufCounters) reset() {
	if c == nil {
		return
	}
	for _, ctr := range []*obs.Counter{
		c.writes, c.retiredEvents, c.retiredRounds, c.roundsStarted,
		c.dummyBytes, c.skipped, c.closed,
		c.advancements, c.casRetries, c.repairs, c.blockedWaits,
		c.resizes, c.reclaims, c.reclaimedBytes, c.verifyFailures,
		c.snapshots, c.readEntries, c.readMissed,
	} {
		ctr.Reset()
	}
	c.writesPub.Store(0)
	c.bytesPub.Store(0)
}

// collect emits the buffer's series. It runs under the registry lock and
// must not reference the Buffer (see type comment).
func (c *bufCounters) collect(e *obs.Emitter) {
	writes, eventBytes := c.eventTotals()
	e.Counter("btrace_core_writes_total", "events recorded through the block fast path", writes)
	e.Counter("btrace_core_written_bytes_total", "wire bytes recorded", eventBytes)
	e.Counter("btrace_core_rounds_started_total", "block rounds locked and initialized", c.roundsStarted.Load())
	e.Counter("btrace_core_rounds_retired_total", "fully confirmed rounds retired by a later lock", c.retiredRounds.Load())
	e.Counter("btrace_core_dummy_bytes_total", "filler bytes written to close or repair block tails", c.dummyBytes.Load())
	e.Counter("btrace_core_blocks_skipped_total", "candidate blocks sacrificed to preempted writers", c.skipped.Load())
	e.Counter("btrace_core_blocks_closed_total", "lagging blocks force-closed during advancement", c.closed.Load())
	e.Counter("btrace_core_advancements_total", "slow-path block advancements", c.advancements.Load())
	e.Counter("btrace_core_cas_retries_total", "failed CAS attempts in slow paths", c.casRetries.Load())
	e.Counter("btrace_core_repairs_total", "stale-round allocations repaired with dummy data", c.repairs.Load())
	e.Counter("btrace_core_blocked_waits_total", "producer waits in the BlockOnStragglers ablation", c.blockedWaits.Load())
	e.Counter("btrace_core_resizes_total", "buffer resize operations", c.resizes.Load())
	e.Counter("btrace_core_reclaims_total", "shrinks that reclaimed memory", c.reclaims.Load())
	e.Counter("btrace_core_reclaimed_bytes_total", "bytes reclaimed by shrinks", c.reclaimedBytes.Load())
	e.Counter("btrace_core_verify_failures_total", "invariant violations reported by Verify", c.verifyFailures.Load())
	e.Counter("btrace_core_snapshots_total", "read-path snapshot/refill passes", c.snapshots.Load())
	e.Counter("btrace_core_read_entries_total", "events delivered through cursors", c.readEntries.Load())
	e.Counter("btrace_core_read_missed_total", "events lost to overwrite before a cursor observed them", c.readMissed.Load())
	var acquired uint64
	for i := range c.acquired {
		acquired += c.acquired[i].v.Load()
	}
	e.Counter("btrace_core_blocks_acquired_total", "data blocks drawn from the shared pool", acquired)
	e.Gauge("btrace_core_capacity_bytes", "live buffer capacity", float64(c.capacity.Load()))
	e.Gauge("btrace_core_buffers", "live tracing buffers", 1)
}

// registerObs wires the buffer's counters into the process-wide registry
// and arranges for them to be folded into the retired totals when the
// Buffer becomes unreachable. The collector closure deliberately captures
// only the counters, never b, so registration does not defeat the
// finalizer.
func (b *Buffer) registerObs() {
	reg := obs.Default()
	id := reg.Register(b.ctrs.collect)
	runtime.SetFinalizer(b, func(*Buffer) { reg.Fold(id) })
}
