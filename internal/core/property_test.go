package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"btrace/internal/tracer"
)

// TestPropertyRetainedSuffixContiguous: for a single producer, the
// retained stamps always form one contiguous suffix of the written
// sequence — BTrace overwrites only the oldest data (§2.1: tracing is
// non-droppable other than the oldest).
func TestPropertyRetainedSuffixContiguous(t *testing.T) {
	f := func(seed int64, nWrites uint16, payloadSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		opt := Options{
			Cores:        1 + rng.Intn(4),
			BlockSize:    256 << rng.Intn(3),
			ActiveBlocks: 0, // default
			Ratio:        1 + rng.Intn(8),
		}
		opt.ActiveBlocks = opt.Cores * (2 + rng.Intn(6))
		b, err := New(opt)
		if err != nil {
			return false
		}
		p := &tracer.FixedProc{CoreID: rng.Intn(opt.Cores)}
		n := 50 + int(nWrites)%2000
		payload := int(payloadSel) % (opt.BlockSize / 4)
		for i := 0; i < n; i++ {
			e := &tracer.Entry{Stamp: uint64(i + 1), Payload: make([]byte, payload)}
			if err := b.Write(p, e); err != nil {
				return false
			}
		}
		es, err := b.ReadAll()
		if err != nil || len(es) == 0 {
			return false
		}
		for i := 1; i < len(es); i++ {
			if es[i].Stamp != es[i-1].Stamp+1 {
				return false
			}
		}
		return es[len(es)-1].Stamp == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNoDuplicatesUnderConcurrency: random configurations with
// concurrent oversubscribed writers never yield duplicate stamps, and the
// globally newest stamp survives.
func TestPropertyNoDuplicatesUnderConcurrency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cores := 1 + rng.Intn(6)
		opt := Options{
			Cores:        cores,
			BlockSize:    256,
			ActiveBlocks: cores * (2 + rng.Intn(4)),
			Ratio:        1 + rng.Intn(6),
		}
		b, err := New(opt)
		if err != nil {
			return false
		}
		threads := cores * (1 + rng.Intn(6))
		perThread := 100 + rng.Intn(300)
		var stamp atomic.Uint64
		var wg sync.WaitGroup
		fail := atomic.Bool{}
		for g := 0; g < threads; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				p := &yieldProc{
					core: g % cores, tid: g,
					rng:  rand.New(rand.NewSource(seed ^ int64(g))),
					prob: 0.05,
				}
				for i := 0; i < perThread; i++ {
					e := &tracer.Entry{Stamp: stamp.Add(1), Payload: make([]byte, 8)}
					if err := b.Write(p, e); err != nil {
						fail.Store(true)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if fail.Load() {
			return false
		}
		es, err := b.ReadAll()
		if err != nil {
			return false
		}
		seen := make(map[uint64]bool, len(es))
		var newest uint64
		for _, e := range es {
			if seen[e.Stamp] {
				return false
			}
			seen[e.Stamp] = true
			if e.Stamp > newest {
				newest = e.Stamp
			}
		}
		return newest == stamp.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyActiveBlocksBounded: at any snapshot during execution, the
// number of rounds that are locked but not fully confirmed is at most A
// (the §3.2 invariant that bounds the gap-prone region).
func TestPropertyActiveBlocksBounded(t *testing.T) {
	opt := Options{Cores: 4, BlockSize: 256, ActiveBlocks: 8, Ratio: 4}
	b := mustNew(t, opt)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var stamp atomic.Uint64
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := &yieldProc{core: g % opt.Cores, tid: g,
				rng: rand.New(rand.NewSource(int64(g))), prob: 0.1}
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := &tracer.Entry{Stamp: stamp.Add(1), Payload: make([]byte, 8)}
				if err := b.Write(p, e); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(g)
	}
	bs := uint32(opt.BlockSize)
	for i := 0; i < 2000; i++ {
		open := 0
		for j := range b.metas {
			_, cCnt := unpackMeta(b.metas[j].confirmed.Load())
			if b.cBytes(cCnt) < bs {
				open++
			}
		}
		if open > opt.ActiveBlocks {
			t.Fatalf("%d open rounds > A=%d", open, opt.ActiveBlocks)
		}
	}
	close(stop)
	wg.Wait()
}

// TestPropertyResizeNeverCorrupts: random sequences of resizes
// interleaved with writes keep the buffer parseable and duplicate-free.
func TestPropertyResizeNeverCorrupts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opt := Options{
			Cores: 2, BlockSize: 256, ActiveBlocks: 4,
			Ratio: 1 + rng.Intn(8), MaxRatio: 8, PoisonOnReclaim: true,
		}
		b, err := New(opt)
		if err != nil {
			return false
		}
		p := &tracer.FixedProc{CoreID: 0}
		var stamp uint64
		for step := 0; step < 20; step++ {
			if rng.Intn(3) == 0 {
				if err := b.Resize(1 + rng.Intn(8)); err != nil {
					return false
				}
				continue
			}
			n := 10 + rng.Intn(100)
			for i := 0; i < n; i++ {
				stamp++
				e := &tracer.Entry{Stamp: stamp, Payload: make([]byte, rng.Intn(64))}
				if err := b.Write(p, e); err != nil {
					return false
				}
			}
		}
		es, err := b.ReadAll()
		if err != nil {
			return false
		}
		seen := make(map[uint64]bool, len(es))
		for _, e := range es {
			if e.Stamp == 0 || e.Stamp > stamp || seen[e.Stamp] {
				return false
			}
			seen[e.Stamp] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
