// Package core implements BTrace, the block-based tracer of
// "Enabling Efficient Mobile Tracing with BTrace" (ASPLOS 2025).
//
// BTrace statically partitions one contiguous global buffer into N equally
// sized data blocks. At any instant at most A blocks are active (A is also
// the number of metadata blocks; each metadata block is mapped to N/A data
// blocks through the global ratio, §3.3). Each virtual core owns at most
// one active block at a time and its threads allocate entries inside that
// block with a single fetch-and-add (fast path, §4.1); confirmation is
// out-of-order (§3.4). When a block fills, a producer advances through the
// slow path (§4.2): it fetch-and-adds the global position, closes the
// lagging block that shares the candidate's metadata, skips candidates
// still held by preempted writers, and locks/initializes the new block
// with three CAS steps. Consumers read filled blocks speculatively and
// re-validate the metadata round afterwards (§4.3). Resizing flips the
// global ratio and reclaims implicitly (§3.3, §4.4): a producer that has
// filled its block is, by that very fact, out of the reclaimed epoch.
package core

import (
	"fmt"

	"btrace/internal/tracer"
)

// Default parameter values. The defaults mirror the paper's evaluation
// setup: 4 KiB data blocks and A = 16 x cores active blocks (the sweet
// spot found in §5.1, Fig. 10).
const (
	DefaultBlockSize     = 4096
	DefaultActivePerCore = 16
	MinBlockSize         = 128
	maxRatioLimit        = 1 << 15
	headerSize           = tracer.BlockHeaderSize
)

// Options configures a Buffer.
type Options struct {
	// Cores is the number of virtual cores that will produce traces.
	Cores int

	// BlockSize is the size of one data block in bytes. Must be a
	// multiple of tracer.Align and at least MinBlockSize.
	// The paper uses one page (4 KiB).
	BlockSize int

	// ActiveBlocks is A: the number of blocks all cores may operate on
	// simultaneously, and equally the number of metadata blocks. Must be
	// >= Cores (§3.2). 0 selects DefaultActivePerCore x Cores.
	ActiveBlocks int

	// Ratio is the initial number of data blocks per metadata block, so
	// the initial capacity is ActiveBlocks x Ratio x BlockSize.
	Ratio int

	// MaxRatio bounds Ratio for the lifetime of the buffer; the backing
	// memory is reserved at ActiveBlocks x MaxRatio x BlockSize (the
	// paper reserves virtual address space at maximum size, §4.4).
	// 0 means MaxRatio = Ratio (no headroom for growth).
	MaxRatio int

	// PoisonOnReclaim overwrites reclaimed data blocks with a poison
	// pattern after a shrink, so tests catch any use-after-reclaim.
	PoisonOnReclaim bool

	// DisableStats disables every self-observability counter update:
	// Stats/Repairs/BlockedWaits return zeros and the buffer is not
	// registered with the obs registry. Benchmark-only — this is the
	// uninstrumented baseline BenchmarkObsOverhead measures the metric
	// layer's cost against.
	DisableStats bool

	// BlockOnStragglers is the §3.4 ablation switch: instead of skipping
	// a candidate block held by a preempted writer, wait for the writer
	// to confirm (the availability policy of a global-buffer tracer such
	// as BBQ). Off by default — skipping is a core BTrace contribution;
	// the ablation quantifies what it buys.
	BlockOnStragglers bool
}

// normalize fills defaults and validates. It returns the normalized copy.
func (o Options) normalize() (Options, error) {
	if o.Cores <= 0 {
		return o, fmt.Errorf("core: Cores must be positive, got %d", o.Cores)
	}
	if o.Cores > 255 {
		return o, fmt.Errorf("core: at most 255 cores supported, got %d", o.Cores)
	}
	if o.BlockSize == 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.BlockSize < MinBlockSize || o.BlockSize%tracer.Align != 0 {
		return o, fmt.Errorf("core: BlockSize must be a multiple of %d and >= %d, got %d",
			tracer.Align, MinBlockSize, o.BlockSize)
	}
	if o.BlockSize >= 1<<30 {
		return o, fmt.Errorf("core: BlockSize too large: %d", o.BlockSize)
	}
	if o.ActiveBlocks == 0 {
		o.ActiveBlocks = DefaultActivePerCore * o.Cores
	}
	if o.ActiveBlocks < o.Cores {
		return o, fmt.Errorf("core: ActiveBlocks (%d) must be >= Cores (%d) to ensure sufficient concurrency",
			o.ActiveBlocks, o.Cores)
	}
	if o.Ratio <= 0 {
		return o, fmt.Errorf("core: Ratio must be positive, got %d", o.Ratio)
	}
	if o.MaxRatio == 0 {
		o.MaxRatio = o.Ratio
	}
	if o.MaxRatio < o.Ratio {
		return o, fmt.Errorf("core: MaxRatio (%d) < Ratio (%d)", o.MaxRatio, o.Ratio)
	}
	if o.MaxRatio > maxRatioLimit {
		return o, fmt.Errorf("core: MaxRatio %d exceeds limit %d", o.MaxRatio, maxRatioLimit)
	}
	return o, nil
}

// Capacity returns the live capacity in bytes implied by the options
// (ActiveBlocks x Ratio x BlockSize).
func (o Options) Capacity() int {
	return o.ActiveBlocks * o.Ratio * o.BlockSize
}

// MaxCapacity returns the reserved capacity (ActiveBlocks x MaxRatio x
// BlockSize).
func (o Options) MaxCapacity() int {
	return o.ActiveBlocks * o.MaxRatio * o.BlockSize
}

// OptionsForBudget derives Options for a total buffer budget in bytes, the
// way the evaluation configures every tracer: A = 16 x cores (unless
// activePerCore overrides) and as many data blocks of blockSize as fit the
// budget, with the ratio rounded down. It returns an error if the budget
// cannot hold at least one block per metadata block.
func OptionsForBudget(totalBytes, cores, blockSize, activePerCore int) (Options, error) {
	if blockSize == 0 {
		blockSize = DefaultBlockSize
	}
	if activePerCore == 0 {
		activePerCore = DefaultActivePerCore
	}
	a := activePerCore * cores
	n := totalBytes / blockSize
	if n < cores {
		return Options{}, fmt.Errorf("core: budget %d B holds %d blocks of %d B, need >= %d (cores)",
			totalBytes, n, blockSize, cores)
	}
	// The effectivity ceiling is 1-A/N (§3.2): with a small budget the
	// preferred A would leave no inactive blocks at all, so shrink A to
	// keep at least minRatio rounds of blocks (never below the core
	// count, which concurrency requires).
	const minRatio = 4
	if n/a < minRatio {
		a = n / minRatio
		if a < cores {
			a = cores
		}
	}
	ratio := n / a
	return Options{
		Cores:        cores,
		BlockSize:    blockSize,
		ActiveBlocks: a,
		Ratio:        ratio,
		MaxRatio:     ratio,
	}, nil
}
