package core

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"btrace/internal/tracer"
)

func resizableOpt() Options {
	return Options{
		Cores: 4, BlockSize: 256, ActiveBlocks: 8,
		Ratio: 2, MaxRatio: 8, PoisonOnReclaim: true,
	}
}

func TestResizeValidation(t *testing.T) {
	b := mustNew(t, resizableOpt())
	if err := b.Resize(0); err == nil {
		t.Error("ratio 0: expected error")
	}
	if err := b.Resize(9); err == nil {
		t.Error("ratio > MaxRatio: expected error")
	}
	if err := b.Resize(2); err != nil {
		t.Errorf("no-op resize: %v", err)
	}
}

func TestResizeGrow(t *testing.T) {
	b := mustNew(t, resizableOpt())
	p := &tracer.FixedProc{CoreID: 0}
	writeN(t, b, p, 0, 50, 8)
	if err := b.Resize(8); err != nil {
		t.Fatal(err)
	}
	if b.Ratio() != 8 {
		t.Fatalf("Ratio = %d, want 8", b.Ratio())
	}
	if b.Capacity() != 8*8*256 {
		t.Fatalf("Capacity = %d", b.Capacity())
	}
	// The buffer keeps working and can now hold more data.
	writeN(t, b, p, 1000, 300, 8)
	es, err := b.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var newest uint64
	for _, e := range es {
		if e.Stamp > newest {
			newest = e.Stamp
		}
	}
	if newest != 1299 {
		t.Fatalf("newest stamp %d, want 1299", newest)
	}
}

func TestResizeShrinkReclaimsAndPoisons(t *testing.T) {
	b := mustNew(t, Options{
		Cores: 2, BlockSize: 256, ActiveBlocks: 4,
		Ratio: 8, MaxRatio: 8, PoisonOnReclaim: true,
	})
	p := &tracer.FixedProc{CoreID: 1}
	writeN(t, b, p, 0, 400, 8) // fill well past the shrunk capacity
	if err := b.Resize(2); err != nil {
		t.Fatal(err)
	}
	if b.Ratio() != 2 {
		t.Fatalf("Ratio = %d, want 2", b.Ratio())
	}
	// The reclaimed range [A*2 .. A*8) blocks must be fully poisoned.
	lo := 4 * 2 * 256
	hi := 4 * 8 * 256
	for i := lo; i < hi; i++ {
		if b.buf[i] != PoisonByte {
			t.Fatalf("byte %d not poisoned: %#x", i, b.buf[i])
		}
	}
	// Continued writes must stay inside the live range.
	writeN(t, b, p, 1000, 200, 8)
	for i := lo; i < hi; i++ {
		if b.buf[i] != PoisonByte {
			t.Fatalf("byte %d written after reclaim", i)
		}
	}
	es, err := b.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var newest uint64
	for _, e := range es {
		if e.Stamp > newest {
			newest = e.Stamp
		}
	}
	if newest != 1199 {
		t.Fatalf("newest stamp %d, want 1199", newest)
	}
}

func TestResizeUnderConcurrentWriters(t *testing.T) {
	opt := resizableOpt()
	b := mustNew(t, opt)
	var stamp atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := &tracer.FixedProc{CoreID: g % opt.Cores, TID: g}
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := &tracer.Entry{Stamp: stamp.Add(1), Payload: make([]byte, 8)}
				if err := b.Write(p, e); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(g)
	}
	// Cycle the ratio up and down while writers hammer the buffer.
	ratios := []int{4, 1, 8, 2, 6, 3, 8, 1, 2}
	for _, r := range ratios {
		if err := b.Resize(r); err != nil {
			t.Errorf("Resize(%d): %v", r, err)
		}
		// Let a burst of writes land at this ratio.
		target := stamp.Load() + 500
		for stamp.Load() < target {
		}
	}
	close(stop)
	wg.Wait()
	checkQuiescentInvariants(t, b)
	// After the final shrink-to-2... last ratio is 2: the dead range must
	// not contain freshly written event records. (Poison was applied at
	// the last shrink; growth back to higher ratios can rewrite blocks,
	// so we only check the final state's dead range for event payloads
	// written after the final resize.)
	if b.Ratio() != 2 {
		t.Fatalf("final ratio %d", b.Ratio())
	}
	es, err := b.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) == 0 {
		t.Fatal("no entries after concurrent resizing")
	}
	seen := map[uint64]bool{}
	for _, e := range es {
		if seen[e.Stamp] {
			t.Fatalf("duplicate stamp %d", e.Stamp)
		}
		seen[e.Stamp] = true
	}
}

func TestResizeShrinkWithConcurrentReader(t *testing.T) {
	opt := resizableOpt()
	b := mustNew(t, opt)
	p := &tracer.FixedProc{CoreID: 0}
	writeN(t, b, p, 0, 200, 8)

	r := b.NewReader()
	defer r.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
		}
	}()
	if err := b.Resize(1); err != nil {
		t.Fatal(err)
	}
	<-done
	// A snapshot taken after the shrink must not see poisoned garbage as
	// events.
	es, _ := r.Snapshot()
	for _, e := range es {
		if len(e.Payload) > 0 && bytes.Equal(e.Payload, bytes.Repeat([]byte{PoisonByte}, len(e.Payload))) {
			t.Fatalf("poison read back as event payload: stamp %d", e.Stamp)
		}
	}
}

func TestReaderCloseUnregisters(t *testing.T) {
	b := mustNew(t, resizableOpt())
	r1 := b.NewReader()
	r2 := b.NewReader()
	if len(b.readers) != 2 {
		t.Fatalf("readers = %d", len(b.readers))
	}
	r1.Close()
	if len(b.readers) != 1 || b.readers[0] != r2 {
		t.Fatalf("unexpected readers after close")
	}
	r2.Close()
	if len(b.readers) != 0 {
		t.Fatalf("readers = %d after closing all", len(b.readers))
	}
}

func TestBoundaryRnd(t *testing.T) {
	b := mustNew(t, resizableOpt()) // A=8
	// posB=17 -> meta 1 boundary at pos 17 (rnd 2); meta 0 at pos 24
	// (rnd 3); meta 5 at pos 21 (rnd 2).
	cases := []struct {
		metaIdx int
		posB    uint64
		want    uint32
	}{
		{1, 17, 2},
		{0, 17, 3},
		{5, 17, 2},
		{1, 16, 2},
		{0, 16, 2},
		{7, 16, 2},
	}
	for _, c := range cases {
		if got := b.boundaryRnd(c.metaIdx, c.posB); got != c.want {
			t.Errorf("boundaryRnd(%d, %d) = %d, want %d", c.metaIdx, c.posB, got, c.want)
		}
	}
}
