package core

import (
	"sync"
	"testing"

	"btrace/internal/tracer"
)

// TestBlockOnStragglersWaitsInsteadOfSkipping runs the §3.4 ablation: with
// BlockOnStragglers, a candidate held by a preempted writer is waited for,
// never skipped, and progress resumes when the writer confirms.
func TestBlockOnStragglersWaitsInsteadOfSkipping(t *testing.T) {
	b := mustNew(t, Options{
		Cores: 1, BlockSize: 256, ActiveBlocks: 2, Ratio: 1,
		BlockOnStragglers: true,
	})

	release := make(chan struct{})
	held := make(chan struct{})
	p0 := &stepProc{core: 0, tid: 0}
	var once bool
	p0.hook = func(pt tracer.PreemptPoint) {
		if pt == tracer.PreemptBeforeCopy && !once {
			once = true
			close(held)
			<-release
		}
	}
	go func() {
		if err := b.Write(p0, &tracer.Entry{Stamp: 1, Payload: make([]byte, 8)}); err != nil {
			t.Errorf("straggler: %v", err)
		}
	}()
	<-held

	// A second thread wraps around; in ablation mode it must block on the
	// straggler's round rather than skip it.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p1 := &tracer.FixedProc{CoreID: 0, TID: 1}
		for i := 0; i < 50; i++ {
			if err := b.Write(p1, &tracer.Entry{Stamp: uint64(10 + i), Payload: make([]byte, 8)}); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	// Wait until the writer observably blocks.
	for b.BlockedWaits() == 0 {
	}
	if b.Stats().SkippedBlocks != 0 {
		t.Fatalf("skipped %d blocks in blocking mode", b.Stats().SkippedBlocks)
	}
	close(release)
	wg.Wait()
	checkQuiescentInvariants(t, b)
	es, _ := b.ReadAll()
	var newest uint64
	for _, e := range es {
		if e.Stamp > newest {
			newest = e.Stamp
		}
	}
	if newest != 59 {
		t.Fatalf("newest stamp %d, want 59", newest)
	}
}

// TestBlockOnStragglersConcurrentStress: the blocking mode must stay
// correct (no duplicates, newest retained) under oversubscription.
func TestBlockOnStragglersConcurrentStress(t *testing.T) {
	opt := Options{
		Cores: 4, BlockSize: 256, ActiveBlocks: 8, Ratio: 4,
		BlockOnStragglers: true,
	}
	b, total := runConcurrent(t, opt, 24, 400, 8, 0.1)
	checkQuiescentInvariants(t, b)
	es, err := b.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	var newest uint64
	for _, e := range es {
		if seen[e.Stamp] {
			t.Fatalf("duplicate stamp %d", e.Stamp)
		}
		seen[e.Stamp] = true
		if e.Stamp > newest {
			newest = e.Stamp
		}
	}
	if newest != total {
		t.Fatalf("newest %d, want %d", newest, total)
	}
	if b.Stats().SkippedBlocks != 0 {
		t.Fatalf("blocking mode skipped %d blocks", b.Stats().SkippedBlocks)
	}
}
