package core

import (
	"testing"

	"btrace/internal/tracer"
)

// The tests in this file mirror the worked examples of the paper's
// implementation section (§4.1 Fig. 8 and §4.2 Fig. 9) step by step,
// observing the metadata words after each operation.

// stepProc is a Proc whose preemption points hand control to the test via
// callbacks, making interleavings deterministic.
type stepProc struct {
	core int
	tid  int
	hook func(p tracer.PreemptPoint)
}

func (p *stepProc) Core() int   { return p.core }
func (p *stepProc) Thread() int { return p.tid }
func (p *stepProc) MaybePreempt(pt tracer.PreemptPoint) {
	if p.hook != nil {
		p.hook(pt)
	}
}
func (p *stepProc) DisablePreemption() func() { return func() {} }

// metaState reads the metadata words of the metadata block serving pos.
// The confirmed count is returned as its byte part (the packed record
// count bits are stripped).
func metaState(b *Buffer, pos uint64) (aRnd, aPos, cRnd, cCnt uint32) {
	m, _ := b.metaOf(pos)
	aRnd, aPos = unpackMeta(m.allocated.Load())
	var cFull uint32
	cRnd, cFull = unpackMeta(m.confirmed.Load())
	cCnt = b.cBytes(cFull)
	return
}

// TestFig8OutOfOrderConfirmation reproduces Fig. 8(a)-(b): T0 allocates,
// T1 allocates and confirms before T0 confirms; the Confirmed counter
// records two entries' bytes while T0's allocation is still outstanding.
func TestFig8OutOfOrderConfirmation(t *testing.T) {
	b := mustNew(t, smallOpt())
	const entrySize = 40 // 8-byte payload

	// Bootstrap: a first write acquires a block for core 0.
	p0 := &stepProc{core: 0, tid: 0}
	if err := b.Write(p0, &tracer.Entry{Stamp: 1, Payload: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	lw := b.locals[0].v.Load()
	_, pos := unpackGlobal(lw)
	_, aPos0, _, cCnt0 := metaState(b, pos)
	if aPos0 != headerSize+entrySize || cCnt0 != headerSize+entrySize {
		t.Fatalf("bootstrap: alloc=%d conf=%d", aPos0, cCnt0)
	}

	// T0 allocates and stalls before confirming; from inside the stall,
	// T1 (same core) allocates and confirms — out of order.
	stalled := false
	p0.hook = func(pt tracer.PreemptPoint) {
		if pt != tracer.PreemptBeforeConfirm || stalled {
			return
		}
		stalled = true
		_, aPos, _, cCnt := metaState(b, pos)
		if aPos != aPos0+entrySize {
			t.Fatalf("during stall: alloc=%d, want %d", aPos, aPos0+entrySize)
		}
		if cCnt != cCnt0 {
			t.Fatalf("during stall: conf=%d, want %d", cCnt, cCnt0)
		}
		// T1 writes while T0 is preempted (Fig. 8b).
		p1 := &stepProc{core: 0, tid: 1}
		if err := b.Write(p1, &tracer.Entry{Stamp: 3, Payload: make([]byte, 8)}); err != nil {
			t.Fatal(err)
		}
		_, aPos, _, cCnt = metaState(b, pos)
		if aPos != aPos0+2*entrySize {
			t.Fatalf("after T1: alloc=%d", aPos)
		}
		// T1's confirmation landed even though T0's is outstanding: the
		// confirmed counter is a count, not a boundary.
		if cCnt != cCnt0+entrySize {
			t.Fatalf("after T1: conf=%d, want %d", cCnt, cCnt0+entrySize)
		}
	}
	if err := b.Write(p0, &tracer.Entry{Stamp: 2, Payload: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	if !stalled {
		t.Fatal("preemption hook never fired")
	}
	_, aPos, _, cCnt := metaState(b, pos)
	if aPos != cCnt {
		t.Fatalf("after both confirm: alloc=%d conf=%d", aPos, cCnt)
	}
	es, _ := b.ReadAll()
	if len(es) != 3 {
		t.Fatalf("retained %d entries, want 3", len(es))
	}
}

// TestFig8cDummyAtTail reproduces Fig. 8(c): an entry that does not fit
// the remaining space forces a dummy fill and advancement.
func TestFig8cDummyAtTail(t *testing.T) {
	b := mustNew(t, smallOpt()) // 256-byte blocks, header 16
	p := &tracer.FixedProc{CoreID: 2}
	// Fill the block to leave 40 free bytes: 16 hdr + 5x40 = 216, 40 left.
	writeN(t, b, p, 0, 5, 8)
	lw := b.locals[2].v.Load()
	_, pos := unpackGlobal(lw)
	// Now write an entry of 72 wire bytes (> 40): the tail must be
	// dummy-filled and the entry placed in a fresh block.
	if err := b.Write(p, &tracer.Entry{Stamp: 100, Payload: make([]byte, 40)}); err != nil {
		t.Fatal(err)
	}
	_, aPos, _, cCnt := metaState(b, pos)
	if aPos < 256 || cCnt != 256 {
		t.Fatalf("old block not closed: alloc=%d conf=%d", aPos, cCnt)
	}
	if got := b.Stats().DummyBytes; got != 40 {
		t.Fatalf("DummyBytes = %d, want 40", got)
	}
	lw2 := b.locals[2].v.Load()
	if lw2 == lw {
		t.Fatal("core 2 did not advance")
	}
	es, _ := b.ReadAll()
	if len(es) != 6 {
		t.Fatalf("retained %d entries, want 6", len(es))
	}
	if es[len(es)-1].Stamp != 100 {
		t.Fatalf("newest stamp %d, want 100", es[len(es)-1].Stamp)
	}
}

// TestFig9SkipBlockedCandidate reproduces the §4.2/Fig. 9 skip: a producer
// advancing onto a candidate whose previous round has a preempted,
// unconfirmed writer closes what it can, then skips the candidate.
func TestFig9SkipBlockedCandidate(t *testing.T) {
	// One core, A=2, ratio=1: two metadata blocks, two data blocks. The
	// wrap-around pressure arrives almost immediately.
	b := mustNew(t, Options{Cores: 1, BlockSize: 256, ActiveBlocks: 2, Ratio: 1})

	// T0 allocates in the current block and stalls before confirming.
	release := make(chan struct{})
	wrote := make(chan struct{})
	p0 := &stepProc{core: 0, tid: 0}
	var once bool
	p0.hook = func(pt tracer.PreemptPoint) {
		// Stall between allocation and copy (fast path only), leaving an
		// unconfirmed allocation in the block.
		if pt == tracer.PreemptBeforeCopy && !once {
			once = true
			close(wrote)
			<-release
		}
	}
	go func() {
		if err := b.Write(p0, &tracer.Entry{Stamp: 1, Payload: make([]byte, 8)}); err != nil {
			t.Errorf("T0: %v", err)
		}
	}()
	<-wrote

	// T1 on the same core now writes enough to wrap around both blocks.
	// Candidates mapping onto T0's block must be skipped, never blocked.
	p1 := &tracer.FixedProc{CoreID: 0, TID: 1}
	for i := 0; i < 50; i++ {
		if err := b.Write(p1, &tracer.Entry{Stamp: uint64(10 + i), Payload: make([]byte, 8)}); err != nil {
			t.Fatalf("T1 write %d: %v", i, err)
		}
	}
	if b.Stats().SkippedBlocks == 0 {
		t.Fatal("expected skipped candidates while T0 is preempted")
	}
	close(release)
	// Let T0 finish, then verify full confirmation resumes.
	for {
		st := b.Stats()
		if st.Writes == 51 {
			break
		}
	}
	checkQuiescentInvariants(t, b)
	es, _ := b.ReadAll()
	if len(es) == 0 {
		t.Fatal("no entries retained")
	}
	newest := es[len(es)-1].Stamp
	if newest != 59 {
		t.Fatalf("newest stamp %d, want 59", newest)
	}
}

// TestFig9PublishRace reproduces the Fig. 9 footnote: when two threads of
// one core advance concurrently, the loser sacrifices the block it won
// (dummy-filled) and uses the winner's.
func TestFig9PublishRace(t *testing.T) {
	b := mustNew(t, Options{Cores: 1, BlockSize: 256, ActiveBlocks: 4, Ratio: 2})
	p1 := &tracer.FixedProc{CoreID: 0, TID: 1}
	// Fill the first block so the next write must advance.
	writeN(t, b, p1, 0, 6, 8)

	// T2 advances and, at the pre-publish preemption point, T3 sneaks in
	// a full advancement cycle, winning the publish race.
	var raced bool
	p2 := &stepProc{core: 0, tid: 2}
	p2.hook = func(pt tracer.PreemptPoint) {
		if pt == tracer.PreemptBeforeConfirm && !raced {
			raced = true
			p3 := &tracer.FixedProc{CoreID: 0, TID: 3}
			writeN(t, b, p3, 100, 7, 8) // forces its own advancement
		}
	}
	if err := b.Write(p2, &tracer.Entry{Stamp: 50, Payload: make([]byte, 8)}); err != nil {
		t.Fatal(err)
	}
	if !raced {
		t.Fatal("pre-publish hook never fired")
	}
	checkQuiescentInvariants(t, b)
	es, _ := b.ReadAll()
	found := false
	for _, e := range es {
		if e.Stamp == 50 {
			found = true
		}
	}
	if !found {
		t.Fatal("entry written by the publish-race loser was lost")
	}
	if b.Stats().ClosedBlocks == 0 {
		t.Fatal("expected at least one sacrificed/closed block")
	}
}
