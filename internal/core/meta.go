package core

import (
	"sync"
	"sync/atomic"
)

// Packed word layouts.
//
// Global and core-local ratio_and_pos (§4.2, Fig. 9):
//
//	bits 48..63  ratio
//	bits  0..47  pos (monotonic global block position)
//
// Metadata words (§4.1, Fig. 8):
//
//	allocated: bits 32..63 rnd, bits 0..31 byte position (FAA target)
//	confirmed: bits 32..63 rnd, bits 0..31 packed count field
//	blockOff:  bits 32..63 rnd, bits 0..31 data block index owned in rnd
//
// The confirmed count field is itself split (Buffer.confirmLayout): its
// low bits.Len(BlockSize) bits hold the confirmed byte count the protocol
// runs on, and the remaining high bits count the event records confirmed
// in the round. An event confirmation adds size + Buffer.evInc in the one
// CAS the fast path already performs, so per-round record counting is
// free; the count is harvested into the self-observability accumulators
// by whichever producer retires the round (the step-3 lock CAS), since at
// that point the word is frozen — a fully confirmed round accepts no
// further confirms. The split leaves enough event bits for any block size
// up to 128 KiB because a record occupies at least EventHeaderSize bytes;
// larger blocks disable in-word counting (evInc = 0) and fall back to a
// sharded per-write counter.
//
// pos maps to metadata and data blocks as
//
//	metaIdx = pos % A
//	rnd     = pos / A
//	dataIdx = (rnd % ratio)*A + metaIdx      (the N:A mapping of §3.3)
const (
	posBits = 48
	posMask = (uint64(1) << posBits) - 1
	valMask = (uint64(1) << 32) - 1
)

func packGlobal(ratio int, pos uint64) uint64 {
	return uint64(ratio)<<posBits | (pos & posMask)
}

func unpackGlobal(w uint64) (ratio int, pos uint64) {
	return int(w >> posBits), w & posMask
}

func packMeta(rnd uint32, val uint32) uint64 {
	return uint64(rnd)<<32 | uint64(val)
}

func unpackMeta(w uint64) (rnd uint32, val uint32) {
	return uint32(w >> 32), uint32(w)
}

// meta is one metadata block. The paper sizes metadata blocks at 128
// bytes; padding below both mirrors that and prevents false sharing
// between adjacent metadata blocks.
type meta struct {
	// allocated packs (rnd, allocated byte position). Producers FAA it to
	// claim space; the position may overshoot BlockSize (overshoot is
	// benign, see writer.go).
	allocated atomic.Uint64
	// confirmed packs (rnd, confirmed byte count). Confirmation is a
	// counter, not a boundary, enabling out-of-order confirmation (§3.4).
	// The block round is complete when the count reaches BlockSize.
	// Locking a new round CASes (oldRnd, BlockSize) -> (newRnd, 0).
	confirmed atomic.Uint64
	// blockOff packs (rnd, data block index). Written by the round owner
	// right after locking, before any data write of the round; readers
	// and closers use it to locate the round's data block even across
	// ratio changes.
	blockOff atomic.Uint64

	// hdrMu serializes writes to the header region (the first
	// BlockHeaderSize bytes) of this metadata block's data blocks: the
	// round owner writing the block header and a skipping producer
	// best-effort writing a skip marker. Because dataIdx ≡ pos (mod A),
	// every data block belongs to exactly one metadata block, so this
	// mutex covers all contenders. Slow path only — the FAA fast path
	// never touches it.
	hdrMu sync.Mutex

	_ [12]uint64 // pad to 128 bytes
}

// paddedWord is a cache-line padded atomic word for per-core state.
type paddedWord struct {
	v atomic.Uint64
	_ [7]uint64
}
