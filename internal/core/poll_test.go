package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"btrace/internal/tracer"
)

func TestPollIncremental(t *testing.T) {
	b := mustNew(t, smallOpt())
	p := &tracer.FixedProc{CoreID: 0}
	r := b.NewReader()
	defer r.Close()

	if es, missed := r.Poll(); len(es) != 0 || missed != 0 {
		t.Fatalf("empty poll: %d events, %d missed", len(es), missed)
	}

	writeN(t, b, p, 1, 10, 8)
	es, missed := r.Poll()
	if missed != 0 {
		t.Fatalf("missed %d", missed)
	}
	if len(es) != 10 || es[0].Stamp != 1 || es[9].Stamp != 10 {
		t.Fatalf("first poll: %d events [%v..]", len(es), es)
	}

	// Nothing new: empty poll.
	if es, _ := r.Poll(); len(es) != 0 {
		t.Fatalf("idle poll returned %d events", len(es))
	}

	writeN(t, b, p, 11, 5, 8)
	es, missed = r.Poll()
	if missed != 0 || len(es) != 5 || es[0].Stamp != 11 {
		t.Fatalf("second poll: %d events missed=%d", len(es), missed)
	}
}

func TestPollReportsMissed(t *testing.T) {
	b := mustNew(t, smallOpt()) // 8 KiB capacity
	p := &tracer.FixedProc{CoreID: 0}
	r := b.NewReader()
	defer r.Close()

	writeN(t, b, p, 1, 5, 8)
	if es, _ := r.Poll(); len(es) != 5 {
		t.Fatal("seed poll")
	}
	// Overrun the whole buffer several times between polls.
	writeN(t, b, p, 6, 2000, 8)
	es, missed := r.Poll()
	if missed == 0 {
		t.Fatal("expected missed events after overrun")
	}
	if len(es) == 0 {
		t.Fatal("no events after overrun")
	}
	// Continuity: missed + delivered accounts for every written stamp.
	if es[0].Stamp != 5+missed+1 {
		t.Fatalf("first delivered %d, missed %d", es[0].Stamp, missed)
	}
	if es[len(es)-1].Stamp != 2005 {
		t.Fatalf("newest %d, want 2005", es[len(es)-1].Stamp)
	}
}

// TestPollConcurrentStream: a poller following live writers sees every
// stamp exactly once (delivered or counted missed), in order.
func TestPollConcurrentStream(t *testing.T) {
	b := mustNew(t, Options{Cores: 4, BlockSize: 256, ActiveBlocks: 16, Ratio: 8})
	var stamp atomic.Uint64
	var wg sync.WaitGroup
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := &tracer.FixedProc{CoreID: g, TID: g}
			for i := 0; i < 5000; i++ {
				if err := b.Write(p, &tracer.Entry{Stamp: stamp.Add(1), Payload: make([]byte, 8)}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(g)
	}
	go func() { wg.Wait(); close(done) }()

	r := b.NewReader()
	defer r.Close()
	var last uint64
	var delivered, missed uint64
	poll := func() {
		es, m := r.Poll()
		missed += m
		for _, e := range es {
			if e.Stamp <= last {
				t.Fatalf("stamp %d after %d", e.Stamp, last)
			}
			last = e.Stamp
			delivered++
		}
	}
	for {
		select {
		case <-done:
			poll()
			total := stamp.Load()
			if delivered+missed > total {
				t.Fatalf("delivered %d + missed %d > written %d", delivered, missed, total)
			}
			if delivered == 0 {
				t.Fatal("nothing delivered")
			}
			return
		default:
			poll()
		}
	}
}
