package core

import (
	"btrace/internal/tracer"
)

// Cursor is the BTrace core's native streaming consumer: an arena-backed
// tracer.Cursor over one registered Reader. Each refill runs the same
// speculative copy-then-revalidate snapshot as Reader.Snapshot but
// decodes into a persistent arena reused across refills, so steady-state
// polling of a busy buffer performs zero per-poll heap allocations once
// the arena has warmed up to the buffer's retained size.
//
// Delivery matches Reader.Poll semantics: events are handed out oldest
// first by logic stamp, each event exactly once (per this cursor), and
// the missed count is the stamp gap between the last delivered event and
// the first newly visible one — events that were overwritten before the
// cursor could observe them.
//
// Ownership follows the tracer.Cursor contract: batch contents (payloads
// point into the arena) are valid only until the next Next or Close.
//
// A Cursor is not safe for concurrent use by multiple goroutines.
type Cursor struct {
	r  *Reader
	ar arena
	// idx is the next undelivered entry in ar.entries.
	idx int
	// last is the highest stamp delivered.
	last uint64
	// missed accumulates the gap detected by the latest refill until a
	// Next call delivers it.
	missed uint64
	closed bool
}

// NewCursor registers a reader on b and returns a streaming cursor over
// it. Close the cursor to unregister the reader.
func (b *Buffer) NewCursor() *Cursor {
	return &Cursor{r: b.NewReader()}
}

// Next implements tracer.Cursor. It fills batch with up to len(batch)
// new events (stamp order) and reports events lost to overwrite since
// the previous call.
func (c *Cursor) Next(batch []tracer.Entry) (int, uint64, error) {
	if c.closed {
		return 0, 0, tracer.ErrClosed
	}
	if len(batch) == 0 {
		return 0, 0, nil
	}
	if c.idx >= len(c.ar.entries) {
		c.refill()
		if c.idx >= len(c.ar.entries) {
			return 0, 0, nil
		}
	}
	n := copy(batch, c.ar.entries[c.idx:])
	c.idx += n
	c.last = c.ar.entries[c.idx-1].Stamp
	missed := c.missed
	c.missed = 0
	c.r.b.ctrs.read(n, missed)
	return n, missed, nil
}

// refill re-snapshots the buffer into the arena and positions idx at the
// first event newer than the delivery watermark. Entries at or below the
// watermark were already delivered (the ring still retains them); a gap
// above it means the buffer wrapped past undelivered events.
func (c *Cursor) refill() {
	c.r.snapshotInto(&c.ar)
	es := c.ar.entries
	// Binary search the resume point: entries are stamp-sorted.
	lo, hi := 0, len(es)
	for lo < hi {
		mid := (lo + hi) / 2
		if es[mid].Stamp <= c.last {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c.idx = lo
	if lo < len(es) && c.last != 0 && es[lo].Stamp > c.last+1 {
		c.missed += es[lo].Stamp - c.last - 1
	}
}

// Infos returns the per-position block information gathered by the most
// recent refill. The slice is owned by the cursor's arena and valid only
// until the next Next or Close.
func (c *Cursor) Infos() []BlockInfo {
	return c.ar.infos
}

// Close unregisters the underlying reader and releases the arena.
func (c *Cursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.r.Close()
	c.ar = arena{}
	return nil
}

var _ tracer.Cursor = (*Cursor)(nil)
