package core

import "btrace/internal/tracer"

// TracerName is the registry name of BTrace.
const TracerName = "btrace"

// Adapter wraps a Buffer as a tracer.Tracer for the benchmark harness.
type Adapter struct {
	*Buffer
}

// Name implements tracer.Tracer.
func (Adapter) Name() string { return TracerName }

// TotalBytes implements tracer.Tracer: the live capacity budget.
func (a Adapter) TotalBytes() int { return a.Buffer.Capacity() }

// NewCursor implements tracer.CursorSource with the core's native
// arena-backed cursor.
func (a Adapter) NewCursor() tracer.Cursor { return a.Buffer.NewCursor() }

var (
	_ tracer.Tracer       = Adapter{}
	_ tracer.CursorSource = Adapter{}
)

func init() {
	tracer.Register(TracerName, func(totalBytes, cores, threads int) (tracer.Tracer, error) {
		opt, err := OptionsForBudget(totalBytes, cores, DefaultBlockSize, DefaultActivePerCore)
		if err != nil {
			return nil, err
		}
		b, err := New(opt)
		if err != nil {
			return nil, err
		}
		return Adapter{b}, nil
	})
}
