package core

import "fmt"

// VerifyReport is the result of Buffer.Verify: the DESIGN.md quiescence
// invariants checked at runtime, with violations reported instead of
// panicking, so a supervising collector can quarantine a suspect buffer
// and keep running.
type VerifyReport struct {
	// Violations describes every invariant breach found; empty means the
	// buffer is consistent.
	Violations []string
	// Blocks is the number of live block positions examined.
	Blocks int
	// InvalidBlocks is the number of positions whose content failed to
	// parse. Stale positions (metadata already past them, i.e. implicitly
	// reclaimed data) are counted here but are not violations; only an
	// unparseable current round breaches DESIGN.md invariant 3.
	InvalidBlocks int
	// Entries is the number of events recovered during verification.
	Entries int
}

// Ok reports whether no violation was found.
func (r VerifyReport) Ok() bool { return len(r.Violations) == 0 }

// Verify checks the buffer against the DESIGN.md invariants that are
// observable from outside the write path:
//
//   - invariant 2: every metadata block's confirmed count is within the
//     block size, and — at quiescence — matches its allocated position;
//   - invariant 3: every block still in its current round is skipped,
//     dummy-closed, or fully parseable (positions the metadata already
//     moved past hold implicitly reclaimed data and may parse as invalid);
//   - invariant 4: the live configuration stays within the reserved
//     [1, MaxRatio] ratio range (at most A blocks are writable by
//     construction: there are exactly A metadata blocks);
//   - invariant 5: the readout is totally ordered by stamp with no
//     duplicates, and stamps within one producer thread are strictly
//     increasing.
//
// Verify is intended for quiescence (no concurrent writers): concurrent
// writes can make the point-in-time metadata reads look transiently
// inconsistent. It never panics; inconsistencies are returned.
func (b *Buffer) Verify() VerifyReport {
	var rep VerifyReport
	bs := uint32(b.opt.BlockSize)

	ratio, _ := unpackGlobal(b.global.Load())
	if ratio < 1 || ratio > b.opt.MaxRatio {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("ratio %d outside [1, %d]", ratio, b.opt.MaxRatio))
	}

	for i := range b.metas {
		m := &b.metas[i]
		aRnd, aPos := unpackMeta(m.allocated.Load())
		cRnd, cFull := unpackMeta(m.confirmed.Load())
		cCnt := b.cBytes(cFull)
		if cCnt > bs {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("meta %d: confirmed count %d exceeds block size %d (invariant 2)", i, cCnt, bs))
		}
		switch {
		case aRnd != cRnd:
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("meta %d: allocated round %d != confirmed round %d at quiescence", i, aRnd, cRnd))
		default:
			// The allocated position may overshoot the block size (benign
			// straddle overshoot, writer.go); clamp before comparing.
			eff := aPos
			if eff > bs {
				eff = bs
			}
			if cCnt > eff {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("meta %d: confirmed %d > allocated %d in round %d (invariant 2)", i, cCnt, eff, cRnd))
			}
			if cCnt < eff {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("meta %d: %d bytes allocated but unconfirmed at quiescence in round %d", i, eff-cCnt, cRnd))
			}
		}
	}

	r := b.NewReader()
	defer r.Close()
	entries, infos := r.Snapshot()
	rep.Blocks = len(infos)
	rep.Entries = len(entries)
	for _, info := range infos {
		if info.State != BlockInvalid {
			continue
		}
		rep.InvalidBlocks++
		// Invariant 3 applies to blocks of the live configuration: a
		// position whose metadata has already moved on holds data placed
		// under an older round or ratio — implicit reclaiming discards it
		// by design (§3.3), so failing to parse it is expected. Only an
		// unparseable *current* round is a violation.
		m, rr := b.metaOf(info.Pos)
		if cRnd, _ := unpackMeta(m.confirmed.Load()); cRnd == rr {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("pos %d: current round unparseable (invariant 3)", info.Pos))
		}
	}

	perThread := map[uint32]uint64{}
	var last uint64
	for i := range entries {
		e := &entries[i]
		if i > 0 && e.Stamp == last {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("stamp %d: duplicate in readout (invariant 5)", e.Stamp))
		}
		last = e.Stamp
		if prev, ok := perThread[e.TID]; ok && e.Stamp <= prev {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("thread %d: stamp %d not strictly increasing after %d (invariant 5)", e.TID, e.Stamp, prev))
		}
		perThread[e.TID] = e.Stamp
	}
	b.ctrs.verified(len(rep.Violations))
	return rep
}
