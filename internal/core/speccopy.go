//go:build !race

package core

// speculativeCopy copies src into dst. See speccopy_race.go for why this
// is a distinct function rather than a bare copy: readers deliberately
// copy block bytes that producers may still be writing, and validate the
// metadata round afterwards (§4.3).
func speculativeCopy(dst, src []byte) {
	copy(dst, src)
}
