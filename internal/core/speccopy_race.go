//go:build race

package core

// speculativeCopy copies src into dst without race-detector
// instrumentation. The §4.3 consumer protocol is seqlock-style: copy the
// block while producers may still be writing it, then re-validate the
// metadata round and discard the copy if it could be torn. The data race
// on the block bytes is therefore deliberate and its effects never escape
// validation, but the detector cannot express "racy read, checked after
// the fact" — so the reader side is exempted here. The loop avoids the
// copy builtin because runtime.slicecopy carries its own race hooks.
//
// Producer writes stay fully instrumented: genuine writer/writer races
// (e.g. two threads scribbling one block header) are still caught.
//
//go:norace
func speculativeCopy(dst, src []byte) {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = src[i]
	}
}
