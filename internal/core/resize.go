package core

import (
	"fmt"
	"runtime"

	"btrace/internal/tracer"
)

// PoisonByte is the pattern written over reclaimed blocks when
// Options.PoisonOnReclaim is set, standing in for the paper's munmap:
// any later read of reclaimed memory decodes as corrupt instead of as
// silently stale data, so tests catch use-after-reclaim.
const PoisonByte = 0xDE

// Resize changes the buffer's live capacity to newRatio data blocks per
// metadata block (capacity = ActiveBlocks x newRatio x BlockSize). Growing
// is immediate. Shrinking additionally waits until the reclaimed range is
// provably unreachable: producers leave implicitly (a metadata block whose
// confirmed round was granted after the ratio change can never touch an
// old block again, §3.3), and consumers leave via epoch-based reclamation
// (§4.4). Resize may be called concurrently with producers and readers;
// concurrent Resize calls serialize.
func (b *Buffer) Resize(newRatio int) error {
	if newRatio < 1 || newRatio > b.opt.MaxRatio {
		return fmt.Errorf("core: ratio %d out of range [1, %d]", newRatio, b.opt.MaxRatio)
	}
	b.resizeMu.Lock()
	defer b.resizeMu.Unlock()

	// Step 1: publish the new ratio atomically with the current position.
	var oldRatio int
	var posB uint64
	for {
		g := b.global.Load()
		r, pos := unpackGlobal(g)
		if r == newRatio {
			return nil
		}
		if b.global.CompareAndSwap(g, packGlobal(newRatio, pos)) {
			oldRatio, posB = r, pos
			break
		}
	}

	// Step 2: close all active blocks by executing the advancement
	// procedure (§4.4), so subsequent traces are placed according to the
	// new ratio and, on shrink, in-flight grants issued under the old
	// ratio are invalidated before they can lock a reclaimed block.
	b.drainPastBoundary(posB)

	if newRatio > oldRatio {
		b.ctrs.resized(b.Capacity(), 0)
		return nil
	}

	// Step 3 (shrink): wait for consumers to leave the shrinking epoch,
	// then reclaim.
	b.waitConsumers()
	if b.opt.PoisonOnReclaim {
		lo := b.opt.ActiveBlocks * newRatio * b.opt.BlockSize
		hi := b.opt.ActiveBlocks * oldRatio * b.opt.BlockSize
		for i := lo; i < hi; i++ {
			b.buf[i] = PoisonByte
		}
	}
	b.ctrs.resized(b.Capacity(), b.opt.ActiveBlocks*(oldRatio-newRatio)*b.opt.BlockSize)
	return nil
}

// boundaryRnd returns the round of the first position >= posB that maps to
// metadata block metaIdx.
func (b *Buffer) boundaryRnd(metaIdx int, posB uint64) uint32 {
	a := uint64(b.opt.ActiveBlocks)
	first := posB
	if rem := first % a; rem != uint64(metaIdx) {
		first += (uint64(metaIdx) + a - rem) % a
	}
	return uint32(first / a)
}

// clean reports whether metadata block i has locked a round granted at or
// after posB. Once that holds, no producer can ever again write a data
// block placed under the old ratio through this metadata block: all older
// grants fail their lock CAS, and stale fetch-and-adds repair into the
// current (new-ratio) block.
func (b *Buffer) clean(i int, posB uint64) bool {
	cRnd, _ := unpackMeta(b.metas[i].confirmed.Load())
	return cRnd >= b.boundaryRnd(i, posB)
}

// drainPastBoundary advances every metadata block past posB by consuming
// candidates itself, sacrificing the blocks it wins. Metadata blocks held
// by preempted writers cannot be forced (their candidates are skipped,
// like any producer would); the drain spins until the writers confirm,
// yielding the processor between attempts.
func (b *Buffer) drainPastBoundary(posB uint64) {
	var p tracer.FixedProc
	for spins := 0; ; spins++ {
		allClean := true
		for i := range b.metas {
			if !b.clean(i, posB) {
				allClean = false
				break
			}
		}
		if allClean {
			return
		}
		b.consumeCandidate(&p)
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
}

// consumeCandidate grants one global position and runs the advancement
// procedure on it without publishing to any core: a won block is
// immediately sacrificed (dummy-filled), pushing the metadata round
// forward. This is the §4.4 "executing the advancement procedure" step.
func (b *Buffer) consumeCandidate(p tracer.Proc) {
	bs := uint32(b.opt.BlockSize)
	g := b.global.Add(1) - 1
	ratio, pos := unpackGlobal(g)
	m, r := b.metaOf(pos)

	cw := m.confirmed.Load()
	cRnd, cCnt := unpackMeta(cw)
	if cRnd >= r {
		return
	}
	if b.cBytes(cCnt) < bs {
		b.closeRound(m, cRnd)
		cw = m.confirmed.Load()
		cRnd, cCnt = unpackMeta(cw)
		if cRnd >= r || b.cBytes(cCnt) < bs {
			b.ctrs.skip()
			return
		}
	}
	if !m.confirmed.CompareAndSwap(cw, packMeta(r, 0)) {
		b.ctrs.casRetry()
		return
	}
	b.ctrs.roundRetired(cRnd, uint64(b.cEvents(cCnt)))
	idx := b.dataIdx(pos, ratio)
	m.blockOff.Store(packMeta(r, idx))
	tracer.EncodeBlockHeader(b.block(idx), pos)
	for {
		a := m.allocated.Load()
		if m.allocated.CompareAndSwap(a, packMeta(r, headerSize)) {
			break
		}
		b.ctrs.casRetry()
	}
	b.ctrs.roundStarted()
	b.confirm(m, r, headerSize, 0, "resize-header")
	b.closeRound(m, r) // sacrifice
	_ = p
}

// waitConsumers blocks until every reader registered at call time has
// left its current snapshot epoch (§4.4).
func (b *Buffer) waitConsumers() {
	b.readersMu.Lock()
	readers := append([]*Reader(nil), b.readers...)
	b.readersMu.Unlock()
	for _, r := range readers {
		e := r.epoch.Load()
		if e%2 == 0 {
			continue // idle
		}
		for r.epoch.Load() == e {
			runtime.Gosched()
		}
	}
}
