package core

import (
	"testing"

	"btrace/internal/tracer"
)

// BenchmarkObsOverhead is the self-observability overhead contract: the
// instrumented record and read fast paths must stay allocation-free and
// within noise (2% ns/op, enforced by cmd/benchdiff in CI) of the
// uninstrumented baseline built with Options.DisableStats. The record
// variants measure one Write per op; the read variants measure draining
// a fresh 500-event burst through the arena-backed cursor.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("record-instrumented", func(b *testing.B) { benchObsRecord(b, false) })
	b.Run("record-baseline", func(b *testing.B) { benchObsRecord(b, true) })
	b.Run("read-instrumented", func(b *testing.B) { benchObsRead(b, false) })
	b.Run("read-baseline", func(b *testing.B) { benchObsRead(b, true) })
}

func obsBenchBuffer(b *testing.B, disable bool) *Buffer {
	buf, err := New(Options{
		Cores: 4, BlockSize: 4096, ActiveBlocks: 64, Ratio: 8,
		DisableStats: disable,
	})
	if err != nil {
		b.Fatal(err)
	}
	return buf
}

func benchObsRecord(b *testing.B, disable bool) {
	buf := obsBenchBuffer(b, disable)
	p := &tracer.FixedProc{CoreID: 1}
	payload := make([]byte, 64)
	e := tracer.Entry{Payload: payload}
	// Fault in the backing pages and settle the block-advance steady
	// state before measuring, so short -benchtime runs compare the two
	// variants' fast paths rather than their cold-start costs.
	var stamp uint64
	for i := 0; i < 4096; i++ {
		stamp++
		e.Stamp = stamp
		if err := buf.Write(p, &e); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stamp++
		e.Stamp = stamp
		if err := buf.Write(p, &e); err != nil {
			b.Fatal(err)
		}
	}
}

func benchObsRead(b *testing.B, disable bool) {
	buf := obsBenchBuffer(b, disable)
	p := &tracer.FixedProc{CoreID: 0}
	payload := make([]byte, 64)
	var stamp uint64
	writeBurst := func(n int) {
		for i := 0; i < n; i++ {
			stamp++
			if err := buf.Write(p, &tracer.Entry{Stamp: stamp, Payload: payload}); err != nil {
				b.Fatal(err)
			}
		}
	}
	cur := buf.NewCursor()
	b.Cleanup(func() { cur.Close() })
	batch := make([]tracer.Entry, 512)
	drain := func() int {
		n := 0
		for {
			k, _, err := cur.Next(batch)
			if err != nil {
				b.Fatal(err)
			}
			if k == 0 {
				return n
			}
			n += k
		}
	}
	// Warm the cursor's arena before measuring.
	writeBurst(2000)
	drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		writeBurst(500)
		b.StartTimer()
		if drain() == 0 {
			b.Fatal("empty read")
		}
	}
}
