package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"btrace/internal/tracer"
)

// yieldProc is a Proc that yields the processor at preemption points with
// a configurable probability, simulating threads scheduled out mid-write.
// Several yieldProcs may share one core id, modeling oversubscription.
type yieldProc struct {
	core   int
	tid    int
	rng    *rand.Rand
	prob   float64 // probability of yielding at a preemption point
	nopre  int     // preemption-disable nesting depth
	yields int
}

func (p *yieldProc) Core() int   { return p.core }
func (p *yieldProc) Thread() int { return p.tid }
func (p *yieldProc) MaybePreempt(tracer.PreemptPoint) {
	if p.nopre == 0 && p.rng.Float64() < p.prob {
		p.yields++
		runtime.Gosched()
	}
}
func (p *yieldProc) DisablePreemption() func() {
	p.nopre++
	return func() { p.nopre-- }
}

// runConcurrent drives threads goroutines (assigned round-robin to cores)
// writing total entries with the given payload size, returning the buffer
// and the ground-truth count of successful writes.
func runConcurrent(t testing.TB, opt Options, threads, perThread, payload int, prob float64) (*Buffer, uint64) {
	t.Helper()
	b := mustNew(t, opt)
	var stamp atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := &yieldProc{
				core: g % opt.Cores,
				tid:  g,
				rng:  rand.New(rand.NewSource(int64(g) + 1)),
				prob: prob,
			}
			for i := 0; i < perThread; i++ {
				e := &tracer.Entry{
					Stamp:   stamp.Add(1),
					Core:    uint8(p.core),
					TID:     uint32(g),
					Payload: make([]byte, payload),
				}
				if err := b.Write(p, e); err != nil {
					t.Errorf("thread %d write %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	return b, stamp.Load()
}

// checkQuiescentInvariants verifies the §3/§4 invariants after all
// writers have finished.
func checkQuiescentInvariants(t *testing.T, b *Buffer) {
	t.Helper()
	bs := uint32(b.opt.BlockSize)
	for i := range b.metas {
		m := &b.metas[i]
		aRnd, aPos := unpackMeta(m.allocated.Load())
		cRnd, cFull := unpackMeta(m.confirmed.Load())
		cCnt := b.cBytes(cFull)
		if aRnd != cRnd {
			t.Errorf("meta %d: allocated rnd %d != confirmed rnd %d", i, aRnd, cRnd)
		}
		// At quiescence every allocated byte is confirmed; the allocated
		// position may overshoot the block, in which case the confirmed
		// count sits exactly at BlockSize.
		want := aPos
		if want > bs {
			want = bs
		}
		if cCnt != want {
			t.Errorf("meta %d: confirmed %d, want %d (allocated %d)", i, cCnt, want, aPos)
		}
	}
}

func TestConcurrentWritersNoOversubscription(t *testing.T) {
	opt := smallOpt()
	b, total := runConcurrent(t, opt, opt.Cores, 2000, 8, 0)
	checkQuiescentInvariants(t, b)
	es, err := b.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(es)) > total {
		t.Fatalf("read %d entries, wrote only %d", len(es), total)
	}
	seen := map[uint64]bool{}
	for _, e := range es {
		if seen[e.Stamp] {
			t.Fatalf("duplicate stamp %d", e.Stamp)
		}
		seen[e.Stamp] = true
	}
	// The newest stamp of every core's final block must be retained: no
	// tracer drop-newest behavior.
	if len(es) == 0 {
		t.Fatal("no entries retained")
	}
	st := b.Stats()
	if st.Writes != total {
		t.Fatalf("stats.Writes = %d, want %d", st.Writes, total)
	}
}

func TestConcurrentWritersOversubscribedPreempting(t *testing.T) {
	// 40 threads on 4 cores, yielding at 20% of preemption points: this
	// exercises out-of-order confirmation, stale-round repair, closing
	// and skipping all at once.
	opt := smallOpt()
	b, total := runConcurrent(t, opt, 40, 500, 8, 0.2)
	checkQuiescentInvariants(t, b)
	es, err := b.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) == 0 {
		t.Fatal("no entries retained")
	}
	seen := map[uint64]bool{}
	for _, e := range es {
		if e.Stamp == 0 || e.Stamp > total {
			t.Fatalf("stamp %d out of range (total %d)", e.Stamp, total)
		}
		if seen[e.Stamp] {
			t.Fatalf("duplicate stamp %d", e.Stamp)
		}
		seen[e.Stamp] = true
	}
	t.Logf("retained %d/%d entries; stats %+v repairs=%d", len(es), total, b.Stats(), b.Repairs())
}

func TestConcurrentReadersDoNotBlockWriters(t *testing.T) {
	opt := smallOpt()
	b := mustNew(t, opt)
	stop := make(chan struct{})
	var readerWg sync.WaitGroup
	for i := 0; i < 3; i++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			r := b.NewReader()
			defer r.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				es, _ := r.Snapshot()
				// Stamps within a snapshot must be unique.
				seen := map[uint64]bool{}
				for _, e := range es {
					if seen[e.Stamp] {
						t.Errorf("snapshot duplicate stamp %d", e.Stamp)
						return
					}
					seen[e.Stamp] = true
				}
			}
		}()
	}
	var stamp atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := &tracer.FixedProc{CoreID: g % opt.Cores, TID: g}
			for i := 0; i < 3000; i++ {
				e := &tracer.Entry{Stamp: stamp.Add(1), Payload: make([]byte, 8)}
				if err := b.Write(p, e); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readerWg.Wait()
	checkQuiescentInvariants(t, b)
}

func TestLatestEntriesAlwaysRetained(t *testing.T) {
	// BTrace's defining property (vs drop-newest tracers): after
	// quiescence, the most recent writes of each thread are recoverable.
	opt := Options{Cores: 4, BlockSize: 256, ActiveBlocks: 16, Ratio: 8}
	b, total := runConcurrent(t, opt, 16, 1000, 8, 0.1)
	es, err := b.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	maxStamp := uint64(0)
	for _, e := range es {
		if e.Stamp > maxStamp {
			maxStamp = e.Stamp
		}
	}
	// The single newest stamp overall must be present (it was written
	// last into an active block that nothing can have overwritten).
	if maxStamp != total {
		t.Errorf("newest retained stamp %d, want %d", maxStamp, total)
	}
}

func TestStaleRoundRepair(t *testing.T) {
	// Construct staleness deterministically: thread A loads the core
	// assignment, thread B (same core) fills the block and advances, then
	// A's FAA lands in the new round and must repair.
	opt := Options{Cores: 1, BlockSize: 256, ActiveBlocks: 2, Ratio: 2}
	b := mustNew(t, opt)
	pA := &tracer.FixedProc{CoreID: 0, TID: 1}
	pB := &tracer.FixedProc{CoreID: 0, TID: 2}

	// B writes enough to fill several blocks, so the core-local moved on.
	writeN(t, b, pB, 1000, 20, 32)

	// Snapshot what A would have seen earlier by directly exercising the
	// repair path: force a stale local by writing with a fabricated old
	// assignment. We simulate via the public API: fill more blocks from B
	// between A's writes cannot be forced deterministically here, so
	// instead verify repairs occur under the oversubscribed stress test
	// and that here a plain interleaving stays correct.
	writeN(t, b, pA, 2000, 5, 32)
	checkQuiescentInvariants(t, b)
	es, _ := b.ReadAll()
	maxStamp := uint64(0)
	for _, e := range es {
		if e.Stamp > maxStamp {
			maxStamp = e.Stamp
		}
	}
	if maxStamp != 2004 {
		t.Fatalf("newest stamp %d, want 2004", maxStamp)
	}
}

func TestHighContentionManyCores(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opt := Options{Cores: 12, BlockSize: 512, ActiveBlocks: 48, Ratio: 8}
	b, total := runConcurrent(t, opt, 96, 400, 16, 0.05)
	checkQuiescentInvariants(t, b)
	es, err := b.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) == 0 || uint64(len(es)) > total {
		t.Fatalf("retained %d of %d", len(es), total)
	}
}
