package faults_test

import (
	"sort"
	"testing"
	"time"

	"btrace/internal/collect"
	"btrace/internal/faults"
	"btrace/internal/overload"
	"btrace/internal/store"
	"btrace/internal/tracer"
)

// fireNonEmpty fires a dump for every non-empty admitted batch, so each
// event the gate admits is immediately on the delivery path — what makes
// the end-to-end accounting identity checkable with no events stranded
// in the rolling window.
type fireNonEmpty struct{}

func (fireNonEmpty) Observe(es []tracer.Entry) string {
	if len(es) > 0 {
		return "batch"
	}
	return ""
}
func (fireNonEmpty) Name() string { return "burst" }

func p99(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := len(samples) * 99 / 100
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	return samples[idx]
}

// TestChaosOverloadStorm drives the full adaptive-overload loop through
// two engage→degrade→recover cycles: an oversubscribed producer floods
// the collector while the durable store's write path is wedged, then
// both heal. Asserted, per DESIGN.md "Overload control":
//
//   - the tier machine escalates to the full-drop tier under each storm,
//     steps back monotonically during each calm (no flapping), and ends
//     fully disengaged;
//   - the event-exact accounting identity holds: every event the source
//     produced is either durably stored or attributed to exactly one
//     overload/spill counter — nothing is silently lost;
//   - the per-step p99 latency under storm stays within 2× of the calm
//     baseline (with an absolute floor to keep CI noise out).
func TestChaosOverloadStorm(t *testing.T) {
	in := faults.New(chaosSeed)
	st, err := store.Open(t.TempDir(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fst := in.FlakyStore(st, 0) // failures are wedge-driven, not random
	src := in.BurstSource(faults.BurstConfig{
		CalmPerPoll:  4,
		StormPerPoll: 32,
		CalmPolls:    scale(40, 20),
		StormPolls:   scale(30, 15),
		Cycles:       2,
		StormMissed:  96, // storm loss rate 96/(96+32) = 0.75
		Categories:   []uint8{1, 2, 3},
		PayloadBytes: 32,
	})
	gate := overload.NewGate(overload.Config{
		MinSampleRate:     0.25,
		EngagePressure:    0.6,
		DisengagePressure: 0.3,
		EngageAfter:       2,
		CooldownEvals:     4,
	})
	sup, err := collect.NewSupervisor(collect.SupervisorConfig{
		Source:          src,
		Triggers:        []collect.Trigger{fireNonEmpty{}},
		Store:           fst,
		StoreSink:       true,
		Overload:        gate,
		SinkRetryBudget: 1,
		BackoffMax:      1,
		// The ring must absorb every storm dump without evicting: any
		// SpillDropped here would be the pipeline losing data it had
		// already accepted.
		SpillCapacity: 256,
		Seed:          chaosSeed,
	})
	if err != nil {
		t.Fatal(err)
	}

	type sample struct {
		storm bool
		tier  overload.Tier
	}
	var (
		trajectory        []sample
		calmNs, stormNs   []time.Duration
		reachedFull       int
		quietSteps, steps int
	)
	for quietSteps < 30 {
		storming := src.Storming()
		if src.Quiet() {
			quietSteps++
		}
		// The store's write path fails exactly while the producer storms.
		if storming {
			fst.Wedge()
		} else {
			fst.Heal()
		}
		start := time.Now()
		sup.Step()
		elapsed := time.Since(start)
		if storming {
			stormNs = append(stormNs, elapsed)
		} else if quietSteps == 0 {
			calmNs = append(calmNs, elapsed)
		}
		trajectory = append(trajectory, sample{storm: storming, tier: gate.Tier()})
		if storming && gate.Tier() == overload.TierStream {
			reachedFull++
		}
		steps++
		if steps > 10_000 {
			t.Fatal("scenario failed to quiesce")
		}
	}
	if err := sup.Flush(); err != nil {
		t.Fatalf("flush after heal: %v", err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	// Tier trajectory: full drop reached under storm, fully released at
	// the end, and within every phase the tier moves one way only — storms
	// never step down, calms never step up (the hysteresis no-flap
	// property, observed end to end rather than on the unit controller).
	if reachedFull == 0 {
		t.Error("storm never drove the gate to the full-drop tier")
	}
	if gate.Tier() != overload.TierNone {
		t.Errorf("tier after recovery: %v, want none", gate.Tier())
	}
	for i := 1; i < len(trajectory); i++ {
		prev, cur := trajectory[i-1], trajectory[i]
		if prev.storm != cur.storm {
			continue // phase boundary
		}
		if cur.storm && cur.tier < prev.tier {
			t.Fatalf("step %d: tier released mid-storm (%v -> %v)", i, prev.tier, cur.tier)
		}
		if !cur.storm && cur.tier > prev.tier {
			t.Fatalf("step %d: tier engaged mid-calm (%v -> %v)", i, prev.tier, cur.tier)
		}
	}
	gs := gate.Stats()
	if gs.TierEngagements != gs.TierReleases {
		t.Errorf("engagements %d != releases %d after full recovery", gs.TierEngagements, gs.TierReleases)
	}

	// Event-exact accounting identity. Everything the source produced was
	// seen by the gate (the verifier quarantines nothing from a
	// well-formed source), and every seen event is durably stored or
	// attributed to exactly one drop counter.
	ss := sup.Stats()
	if ss.Quarantined != 0 {
		t.Fatalf("verifier quarantined %d well-formed events", ss.Quarantined)
	}
	produced := src.Produced()
	if gs.Seen != produced {
		t.Fatalf("gate saw %d of %d produced events", gs.Seen, produced)
	}
	_, stored, _ := fst.Stats()
	accounted := stored + gs.SampledOut + gs.ThrottledCategory + gs.ThrottledStream +
		gs.ShedCategory + gs.ShedStream + ss.SpillDroppedEvents
	if accounted != produced {
		t.Fatalf("accounting identity broken: produced %d, accounted %d (stored %d, gate %+v, supervisor %+v)",
			produced, accounted, stored, gs, ss)
	}
	if ss.SpillDropped != 0 || ss.SpillDroppedEvents != 0 {
		t.Errorf("pipeline dropped accepted data: %+v", ss)
	}
	h := sup.Health()
	if h.PendingDumps != 0 || h.SpilledDumps != 0 {
		t.Errorf("undelivered dumps after flush: %+v", h)
	}
	if gs.PayloadShedEvents == 0 {
		t.Error("payload tier never engaged its shedding")
	}

	// Latency bound: storm p99 within 2× of the calm baseline. The
	// absolute floor keeps scheduler noise on busy CI machines from
	// failing a bound the pipeline itself respects.
	calmP99, stormP99 := p99(calmNs), p99(stormNs)
	if stormP99 > 2*calmP99 && stormP99 > 250*time.Microsecond {
		t.Errorf("storm p99 %v exceeds 2x calm p99 %v", stormP99, calmP99)
	}

	// The injected schedule is part of the scenario's reproducible plan.
	if got := in.Schedule("store"); len(got) != 4 ||
		got[0] != "wedge" || got[1] != "heal" || got[2] != "wedge" || got[3] != "heal" {
		t.Errorf("store fault schedule: %v", got)
	}
	if got := in.Schedule("burst"); len(got) == 0 {
		t.Error("burst phase transitions not recorded")
	}
}
