package faults_test

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"btrace/internal/collect"
	"btrace/internal/distributor"
	"btrace/internal/faults"
	"btrace/internal/live"
	"btrace/internal/overload"
	"btrace/internal/store"
	"btrace/internal/store/backend"
	"btrace/internal/tracer"
	"btrace/internal/vulture"
)

// TestChaosVultureContinuous is the in-process version of the CI soak
// gate: concurrent writers push contiguous stamp ranges through a
// replicated cluster with flaky stores while a live-tail subscriber
// follows along, a shard is drained mid-storm, and afterwards every
// fully-acked range is demanded back from both cluster read surfaces.
// Asserted, per DESIGN.md "Live tail & continuous verification":
//
//   - zero acked-stamp loss, duplication or mis-ordering on the
//     sequential and parallel merged query surfaces, byte-for-byte in
//     agreement, with a shard drained mid-run;
//   - the live tail's conservation law: every admitted event is either
//     delivered to the subscriber or counted missed — nothing vanishes
//     silently — and per-stream stamps only ever rise;
//   - the chaos was real: the drain moved data and the storm kept
//     acking through it.
func TestChaosVultureContinuous(t *testing.T) {
	in := faults.New(chaosSeed)
	const nShards = 4
	locals := make([]*distributor.LocalShard, nShards)
	shards := make([]distributor.Shard, nShards)
	flaky := make([]*faults.FlakyStore, nShards)
	for i := range locals {
		st, err := store.OpenBackend(backend.NewObject(), store.Config{})
		if err != nil {
			t.Fatal(err)
		}
		idx := i
		sh, err := distributor.NewLocalShard(distributor.LocalConfig{
			Name:  fmt.Sprintf("shard-%02d", i),
			Store: st,
			WrapStore: func(ds collect.DumpStore) collect.DumpStore {
				f := in.FlakyStore(ds, 0.01)
				flaky[idx] = f
				return f
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		locals[i] = sh
		shards[i] = sh
	}
	hub := live.NewHub(live.Config{})
	d, err := distributor.New(shards, distributor.Config{
		Replication:  2,
		HedgeLimit:   2,
		Retries:      2,
		Gate:         overload.Config{MinSampleRate: 1, Admitted: hub.Publish},
		RecordStamps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	rep := vulture.NewReport()

	// The live subscriber races the writers, like a real /live client.
	sub, err := hub.Subscribe(live.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	tailStop := make(chan struct{})
	tailDone := make(chan struct{})
	go func() {
		defer close(tailDone)
		last := make(map[uint32]*uint64)
		batch := make([]tracer.Entry, 256)
		drainOnce := func() bool {
			for {
				n, missed, err := sub.Next(batch)
				rep.Add(&rep.LiveMissed, missed)
				for i := 0; i < n; i++ {
					e := &batch[i]
					l := last[e.TID]
					if l == nil {
						l = new(uint64)
						last[e.TID] = l
					}
					rep.ObserveLive(l, e.Stamp)
				}
				if err != nil {
					return false
				}
				if n == 0 && missed == 0 {
					return true
				}
			}
		}
		for {
			if !drainOnce() {
				return
			}
			select {
			case <-tailStop:
				drainOnce() // final exhaustive sweep after the last publish
				return
			case <-sub.Notify():
			}
		}
	}()

	const (
		nWriters = 3
		perBatch = 64
	)
	batchesPer := scale(60, 20)
	var (
		nextStamp atomic.Uint64
		acked     atomic.Uint64
		refused   atomic.Uint64
		mu        sync.Mutex
		fullAcked [][2]uint64 // fully-acked contiguous ranges
		ackedAll  = make(map[uint64]bool)
	)
	var writers sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		writers.Add(1)
		go func(tid uint32) {
			defer writers.Done()
			for b := 0; b < batchesPer; b++ {
				hi := nextStamp.Add(perBatch)
				lo := hi - perBatch + 1
				es := make([]tracer.Entry, perBatch)
				for i := range es {
					s := lo + uint64(i)
					es[i] = tracer.Entry{
						Stamp: s, TS: s * 1000, TID: tid,
						Category: 1, Level: 1,
						Payload: []byte(fmt.Sprintf("v%d", s)),
					}
				}
				res := d.Ingest("vulture", es)
				acked.Add(uint64(res.Acked))
				refused.Add(uint64(res.Refused))
				mu.Lock()
				for _, s := range res.AckedStamps {
					ackedAll[s] = true
				}
				if res.Acked == perBatch {
					fullAcked = append(fullAcked, [2]uint64{lo, hi})
				}
				mu.Unlock()
			}
		}(uint32(700 + w))
	}

	// Chaos alongside the storm: a store wedges and heals, and a shard is
	// drained out of the ring while writes are in flight.
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		flaky[3].Wedge()
		flaky[3].Heal()
		if _, _, err := d.DrainShard("shard-01"); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	writers.Wait()
	<-chaosDone
	locals[1].Close()
	close(tailStop)
	<-tailDone
	sub.Close()

	if acked.Load() == 0 || len(fullAcked) == 0 {
		t.Fatal("storm acked nothing; scenario degenerate")
	}

	// Both cluster read surfaces, held to the ack contract via the same
	// report type the CI soak binary uses.
	surfaces := []struct {
		name string
		open func() (tracer.Cursor, error)
	}{
		{"sequential", func() (tracer.Cursor, error) { return d.Query(store.Query{}) }},
		{"parallel", func() (tracer.Cursor, error) { return d.QueryParallel(store.Query{}, 4) }},
	}
	var streams [][]uint64
	for _, sf := range surfaces {
		cur, err := sf.open()
		if err != nil {
			t.Fatal(err)
		}
		var stamps []uint64
		batch := make([]tracer.Entry, 512)
		for {
			n, _, err := cur.Next(batch)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
			for _, e := range batch[:n] {
				stamps = append(stamps, e.Stamp)
			}
		}
		cur.Close()
		streams = append(streams, stamps)
		for _, r := range fullAcked {
			lo, hi := r[0], r[1]
			i := sort.Search(len(stamps), func(k int) bool { return stamps[k] >= lo })
			j := sort.Search(len(stamps), func(k int) bool { return stamps[k] > hi })
			rep.VerifyRange(sf.name, lo, hi, stamps[i:j])
		}
		// Partially-acked batches too: each individually acked stamp must
		// be present.
		present := make(map[uint64]bool, len(stamps))
		for _, s := range stamps {
			present[s] = true
		}
		for s := range ackedAll {
			if !present[s] {
				t.Errorf("%s: acked stamp %d unreadable after drain", sf.name, s)
			}
		}
	}
	if len(streams[0]) != len(streams[1]) {
		t.Fatalf("surfaces disagree: sequential %d stamps, parallel %d", len(streams[0]), len(streams[1]))
	}
	for i := range streams[0] {
		if streams[0][i] != streams[1][i] {
			t.Fatalf("surface divergence at %d: %d vs %d", i, streams[0][i], streams[1][i])
		}
	}

	// Live conservation: admitted = acked + refused (the gate admits
	// before replication decides), and each admitted event was delivered
	// or counted missed.
	admitted := acked.Load() + refused.Load()
	st := sub.Stats()
	if st.Matched != admitted {
		t.Fatalf("hub matched %d events, want admitted %d", st.Matched, admitted)
	}
	if rep.LiveDelivered+rep.LiveMissed != admitted {
		t.Fatalf("live conservation broken: delivered %d + missed %d != admitted %d",
			rep.LiveDelivered, rep.LiveMissed, admitted)
	}
	if rep.Failed() {
		t.Fatalf("ack contract broken under chaos: %v", rep.Violations())
	}
	t.Logf("vulture chaos: %d acked, %d refused, %d full ranges verified on 2 surfaces; live %d delivered + %d missed",
		acked.Load(), refused.Load(), len(fullAcked), rep.LiveDelivered, rep.LiveMissed)
}
