package faults_test

import (
	"fmt"
	"testing"

	"btrace/internal/collect"
	"btrace/internal/distributor"
	"btrace/internal/faults"
	"btrace/internal/overload"
	"btrace/internal/store"
	"btrace/internal/store/backend"
	"btrace/internal/tracer"
)

// TestChaosClusterShardKill drives a replicated ingest storm through the
// distributor while one shard is killed outright and another shard's
// store goes flaky and intermittently wedges. Asserted, per DESIGN.md
// "Distributed ingest tier":
//
//   - zero acked-event loss: with RF=2 and quorum acks, every stamp the
//     distributor acked is readable from the surviving shards after the
//     kill — durability is quorum-backed, not best-effort;
//   - the event-exact accounting identity holds end to end: every event
//     produced is attributed to exactly one of acked, refused, tenant
//     throttled, or gate dropped;
//   - the merged query stream is strictly increasing by stamp (replica
//     duplicates collapse to one copy each);
//   - the failure path was actually exercised: the kill shows up as
//     replica errors and/or hedged deliveries.
func TestChaosClusterShardKill(t *testing.T) {
	in := faults.New(chaosSeed)
	const nShards = 4
	locals := make([]*distributor.LocalShard, nShards)
	shards := make([]distributor.Shard, nShards)
	flaky := make([]*faults.FlakyStore, nShards)
	for i := range locals {
		st, err := store.OpenBackend(backend.NewObject(), store.Config{})
		if err != nil {
			t.Fatal(err)
		}
		idx := i
		sh, err := distributor.NewLocalShard(distributor.LocalConfig{
			Name:  fmt.Sprintf("shard-%02d", i),
			Store: st,
			// Every shard's sink rolls the same injected dice: a cluster
			// of flaky disks, not one bad apple.
			WrapStore: func(ds collect.DumpStore) collect.DumpStore {
				f := in.FlakyStore(ds, 0.02)
				flaky[idx] = f
				return f
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		locals[i] = sh
		shards[i] = sh
	}
	overrides, err := distributor.ParseOverrides("noisy=100:10")
	if err != nil {
		t.Fatal(err)
	}
	d, err := distributor.New(shards, distributor.Config{
		Replication: 2,
		// Walk the whole ring when owners fail: with one shard dead and
		// another wedged the remaining two must still form a quorum.
		HedgeLimit:   2,
		Retries:      2,
		Gate:         overload.Config{MinSampleRate: 1},
		Overrides:    overrides,
		RecordStamps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const perBatch = 64
	batches := scale(120, 40)
	killAt := batches / 3
	var produced, acked, refused, throttled, gateDropped int
	ackedStamps := make(map[uint64]bool)
	stamp := uint64(0)
	for b := 0; b < batches; b++ {
		if b == killAt {
			locals[1].Kill()
		}
		// A survivor's store wedges and heals in waves through the storm.
		switch b % 20 {
		case 10:
			flaky[3].Wedge()
		case 15:
			flaky[3].Heal()
		}
		tenant := "acme"
		if b%4 == 3 {
			tenant = "noisy"
		}
		es := make([]tracer.Entry, perBatch)
		for i := range es {
			stamp++
			es[i] = tracer.Entry{
				Stamp:    stamp,
				TS:       stamp * 1000,
				TID:      uint32(100 + (int(stamp) % 16)),
				Category: uint8(stamp % 5),
				Level:    1,
				Payload:  []byte(fmt.Sprintf("c%d", stamp)),
			}
		}
		res := d.Ingest(tenant, es)
		produced += len(es)
		acked += res.Acked
		refused += res.Refused
		throttled += res.Throttled
		gateDropped += res.GateDropped
		if len(res.AckedStamps) != res.Acked {
			t.Fatalf("batch %d: %d acked stamps for %d acked events", b, len(res.AckedStamps), res.Acked)
		}
		for _, s := range res.AckedStamps {
			ackedStamps[s] = true
		}
	}
	flaky[3].Heal()

	// Accounting identity: every produced event lands in exactly one
	// bucket.
	if got := acked + refused + throttled + gateDropped; got != produced {
		t.Fatalf("accounting identity broken: %d acked + %d refused + %d throttled + %d gate != %d produced",
			acked, refused, throttled, gateDropped, produced)
	}
	if acked == 0 {
		t.Fatal("storm acked nothing; scenario degenerate")
	}
	if throttled == 0 {
		t.Fatal("noisy tenant was never throttled; override inert")
	}
	st := d.Stats()
	if st.ReplicaErrors == 0 && st.Hedges == 0 {
		t.Fatalf("kill and wedges left no trace in stats: %+v", st)
	}

	// Zero acked-event loss: the merged view over the survivors must
	// contain every quorum-acked stamp, strictly increasing.
	cur, err := d.Query(store.Query{})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	readable := make(map[uint64]bool, len(ackedStamps))
	batch := make([]tracer.Entry, 512)
	last := uint64(0)
	for {
		n, _, err := cur.Next(batch)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
		for _, e := range batch[:n] {
			if e.Stamp <= last {
				t.Fatalf("merged stream not strictly increasing: %d after %d", e.Stamp, last)
			}
			last = e.Stamp
			readable[e.Stamp] = true
		}
	}
	lost := 0
	for s := range ackedStamps {
		if !readable[s] {
			lost++
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acked events unreadable after shard kill (zero-loss violated)", lost, len(ackedStamps))
	}
	t.Logf("storm: %d produced, %d acked, %d refused, %d throttled; %d readable; stats %+v",
		produced, acked, refused, throttled, len(readable), st)
}
