// The chaos suite: every DESIGN.md invariant, asserted under each
// injected fault scenario with a fixed seed. The scenarios mirror the
// production incidents the paper's availability mechanisms exist for
// (§2.1, §3.4, §4.4, §6): preemption storms inside the allocate→confirm
// window, writers frozen holding unconfirmed bytes, CPU hot-unplug racing
// a Resize, and a collection daemon whose source and sink fail underneath
// it. Runs under -short with scaled-down workloads.
package faults_test

import (
	"bytes"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"btrace/internal/collect"
	"btrace/internal/core"
	"btrace/internal/faults"
	"btrace/internal/sim"
	"btrace/internal/tracer"
)

// chaosSeed is the suite's fixed root seed: every scenario's fault plan is
// a pure function of it.
const chaosSeed = 42

// scale picks the workload size, honoring -short.
func scale(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

// assertInvariants checks the DESIGN.md invariants at quiescence:
// Buffer.Verify covers invariants 2-5 (confirmation accounting, block
// parseability, the active-block bound, readout ordering); the stamp scan
// covers invariant 1 (the newest written entry is retained; newest == 0
// skips it, for scenarios where a shrink legitimately discarded the tail)
// and stands proxy for invariant 6 (an entry decoded out of reclaimed or
// poisoned memory shows up as a phantom, duplicate, or unparseable block).
func assertInvariants(t *testing.T, b *core.Buffer, newest uint64) {
	t.Helper()
	rep := b.Verify()
	if !rep.Ok() {
		t.Fatalf("invariant violations (%d blocks, %d entries): %v",
			rep.Blocks, rep.Entries, rep.Violations)
	}
	es, err := b.ReadAll()
	if err != nil {
		t.Fatalf("readall: %v", err)
	}
	seen := make(map[uint64]bool, len(es))
	var max uint64
	for _, e := range es {
		if e.Stamp == 0 || (newest > 0 && e.Stamp > newest) {
			t.Fatalf("phantom stamp %d (wrote up to %d): invariant 6", e.Stamp, newest)
		}
		if seen[e.Stamp] {
			t.Fatalf("duplicate stamp %d in readout", e.Stamp)
		}
		seen[e.Stamp] = true
		if e.Stamp > max {
			max = e.Stamp
		}
	}
	if newest > 0 && max != newest {
		t.Fatalf("newest stamp not retained: readout max %d, wrote %d (invariant 1)", max, newest)
	}
}

// TestChaosPreemptStorm floods the allocate→confirm window (§2.2
// Observation 2) of every writer with forced preemptions and checks the
// protocol confirms every byte anyway.
func TestChaosPreemptStorm(t *testing.T) {
	m, err := sim.NewMachine(sim.Topology{Middle: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.New(core.Options{Cores: 4, BlockSize: 256, ActiveBlocks: 8, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(chaosSeed)
	storm := in.PreemptStorm(0.5)

	const threads = 8
	perThread := scale(400, 100)
	var stamp atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		th, err := m.NewThread(sim.ThreadConfig{ID: g, Core: g % m.Cores()})
		if err != nil {
			t.Fatal(err)
		}
		th.SetFaultController(storm)
		wg.Add(1)
		go func(g int, th *sim.Thread) {
			defer wg.Done()
			th.Acquire()
			defer th.Release()
			for i := 0; i < perThread; i++ {
				s := stamp.Add(1)
				e := &tracer.Entry{Stamp: s, TS: s, Core: uint8(th.Core()), TID: uint32(g), Payload: make([]byte, 8)}
				if err := b.Write(th, e); err != nil {
					t.Errorf("thread %d: %v", g, err)
					return
				}
			}
		}(g, th)
	}
	wg.Wait()

	if storm.Fired() == 0 {
		t.Fatal("storm injected no preemptions")
	}
	assertInvariants(t, b, stamp.Load())
}

// TestChaosStragglerKill freezes a writer between allocation and
// confirmation — the killed/stalled writer of §3.4 — while another core
// wraps the buffer repeatedly. The frozen writer's candidates must be
// skipped (availability), and when the writer is finally reaped (released)
// the buffer must return to full consistency.
func TestChaosStragglerKill(t *testing.T) {
	m, err := sim.NewMachine(sim.Topology{Middle: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.New(core.Options{Cores: 2, BlockSize: 256, ActiveBlocks: 4, Ratio: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(chaosSeed)
	str := in.Straggler(0, 3) // freeze thread 0 at its 3rd pre-confirm point

	var stamp atomic.Uint64
	write := func(th *sim.Thread, tid, n int) {
		for i := 0; i < n; i++ {
			s := stamp.Add(1)
			e := &tracer.Entry{Stamp: s, TS: s, Core: uint8(th.Core()), TID: uint32(tid), Payload: make([]byte, 8)}
			if err := b.Write(th, e); err != nil {
				t.Errorf("thread %d: %v", tid, err)
				return
			}
		}
	}

	straggler, err := m.NewThread(sim.ThreadConfig{ID: 0, Core: 0})
	if err != nil {
		t.Fatal(err)
	}
	straggler.SetFaultController(str)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		straggler.Acquire()
		defer straggler.Release()
		write(straggler, 0, 40)
	}()
	for !str.Stalled() {
		runtime.Gosched()
	}

	// The straggler now holds unconfirmed bytes off-core. Wrap the buffer
	// many times from the other core: its block must be skipped, never
	// waited on (and never force-closed into inconsistency).
	busy, err := m.NewThread(sim.ThreadConfig{ID: 1, Core: 1})
	if err != nil {
		t.Fatal(err)
	}
	busy.Acquire()
	write(busy, 1, scale(2000, 500))
	busy.Release()
	if b.Stats().SkippedBlocks == 0 {
		t.Fatal("no blocks skipped while a writer held unconfirmed bytes")
	}

	// Reap the straggler: it resumes, confirms its outstanding bytes into
	// the round others skipped past (which never advanced — the lock CAS
	// requires full confirmation), and finishes its writes.
	str.Release()
	wg.Wait()
	if !str.EverStalled() {
		t.Fatal("straggler never engaged")
	}
	assertInvariants(t, b, stamp.Load())
}

// TestChaosHotplugDuringResize (satellite: hot-unplug racing Resize):
// unbound writers keep tracing while a core goes offline, the buffer grows
// mid-flight, the core returns, and the buffer shrinks back with poisoning
// on. Producers must never touch reclaimed blocks (invariant 6).
func TestChaosHotplugDuringResize(t *testing.T) {
	m, err := sim.NewMachine(sim.Topology{Middle: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.New(core.Options{
		Cores: 4, BlockSize: 256, ActiveBlocks: 8,
		Ratio: 2, MaxRatio: 8, PoisonOnReclaim: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(chaosSeed)
	hp := in.Hotplug(m)

	// Writers proceed in chunks separated by gates, so each fault lands
	// while writers genuinely have work left (without gates the goroutines
	// can blast through every write before the first fault fires). A
	// writer parks at a gate only after releasing its core, so siblings
	// sharing the core keep running.
	const threads, chunks = 8, 4
	perChunk := scale(200, 50)
	total := uint64(threads * chunks * perChunk)
	gates := [chunks - 1]chan struct{}{}
	for i := range gates {
		gates[i] = make(chan struct{})
	}
	var stamp atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		th, err := m.NewThread(sim.ThreadConfig{
			ID: g, Core: g % m.Cores(), PreemptProb: 0.2, Seed: int64(g) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int, th *sim.Thread) {
			defer wg.Done()
			th.Acquire()
			defer th.Release()
			for c := 0; c < chunks; c++ {
				for i := 0; i < perChunk; i++ {
					if i%16 == 15 {
						// Periodic deschedule so hotplug migration is
						// exercised even when the preemption dice stay cold.
						th.Release()
						th.Acquire()
					}
					s := stamp.Add(1)
					e := &tracer.Entry{Stamp: s, TS: s, Core: uint8(th.Core()), TID: uint32(g), Payload: make([]byte, 8)}
					if err := b.Write(th, e); err != nil {
						t.Errorf("thread %d: %v", g, err)
						return
					}
				}
				if c < chunks-1 {
					th.Release()
					<-gates[c]
					th.Acquire()
				}
			}
		}(g, th)
	}
	// Writers cannot pass a closed gate, so the stamp counter plateauing
	// at a chunk boundary means every writer is parked there.
	waitStamp := func(n uint64) {
		for stamp.Load() < n {
			runtime.Gosched()
		}
	}

	waitStamp(total / 4)
	if err := b.Resize(4); err != nil {
		t.Fatalf("grow to 4: %v", err)
	}
	if err := hp.Unplug(2); err != nil {
		t.Fatal(err)
	}
	close(gates[0])
	// Resize while chunk 2 is in flight and core 2 is down: the drain
	// races writers migrating off the dead core.
	if err := b.Resize(8); err != nil {
		t.Fatalf("grow to 8 with core 2 offline: %v", err)
	}
	waitStamp(total / 2)
	if err := hp.Replug(2); err != nil {
		t.Fatal(err)
	}
	close(gates[1])
	waitStamp(3 * total / 4)
	close(gates[2])
	wg.Wait()

	// Full consistency at quiescence, before any shrink discards data.
	assertInvariants(t, b, stamp.Load())

	// Shrink back (only after the replug: a starved bound writer would
	// deadlock the drain — exactly why the policy replugs first). Reclaimed
	// blocks are poisoned; later writes must land only in the live range.
	if err := b.Resize(2); err != nil {
		t.Fatalf("shrink to 2: %v", err)
	}
	if got := b.Ratio(); got != 2 {
		t.Fatalf("ratio after shrink: %d", got)
	}
	p := &tracer.FixedProc{CoreID: 1, TID: 99}
	for i := 0; i < 100; i++ {
		s := stamp.Add(1)
		if err := b.Write(p, &tracer.Entry{Stamp: s, TS: s, TID: 99, Payload: make([]byte, 8)}); err != nil {
			t.Fatalf("post-shrink write: %v", err)
		}
	}
	assertInvariants(t, b, stamp.Load())
	if sched := in.Schedule("hotplug"); len(sched) != 2 {
		t.Fatalf("hotplug schedule: %v", sched)
	}
}

// fireAlways dumps on every non-empty ingest, so each delivered batch
// becomes an observable dump.
type fireAlways struct{}

func (fireAlways) Name() string { return "always" }
func (fireAlways) Observe(es []tracer.Entry) string {
	if len(es) == 0 {
		return ""
	}
	return "batch"
}

// batchesOf builds n source batches of k consecutively stamped entries.
func batchesOf(n, k int) [][]tracer.Entry {
	var s uint64
	out := make([][]tracer.Entry, n)
	for i := range out {
		b := make([]tracer.Entry, k)
		for j := range b {
			s++
			b[j] = tracer.Entry{Stamp: s, TS: s}
		}
		out[i] = b
	}
	return out
}

// TestChaosSupervisorFlakySource: a source that errors and tears batches
// under a supervised pipeline. Transient faults must be absorbed with zero
// event loss and zero lost dumps.
func TestChaosSupervisorFlakySource(t *testing.T) {
	const batches, per = 40, 3
	src := &scriptedPoller{polls: batchesOf(batches, per)}
	in := faults.New(chaosSeed)
	fp := in.FlakyPoller(src, 0.4, 0.5)
	var sinkBuf bytes.Buffer
	s, err := collect.NewSupervisor(collect.SupervisorConfig{
		Source:   fp,
		Triggers: []collect.Trigger{fireAlways{}},
		Sink:     &sinkBuf,
		Seed:     chaosSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var delivered []tracer.Entry
	for i := 0; i < 400; i++ {
		if d := s.Step(); d != nil {
			delivered = append(delivered, d.Events...)
		}
	}
	stats := s.Stats()
	if stats.PollErrors == 0 {
		t.Fatal("no poll errors injected")
	}
	// Zero event loss end to end: each dump consumes the window, so the
	// dumps' concatenated events are every stamp the source ever produced,
	// in order, exactly once.
	if len(delivered) != batches*per {
		t.Fatalf("dumps delivered %d events, want %d", len(delivered), batches*per)
	}
	for i, e := range delivered {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("delivered[%d] stamp %d", i, e.Stamp)
		}
	}
	// Zero lost dumps: everything produced was delivered to the sink.
	if stats.Dumps == 0 || stats.DumpsWritten != stats.Dumps || stats.Spilled != 0 {
		t.Fatalf("dump accounting: %+v", stats)
	}
	if h := s.Health(); h.SourceWedged || h.PendingDumps != 0 {
		t.Fatalf("health: %+v", h)
	}
	if stats.Quarantined != 0 {
		t.Fatalf("quarantined %d clean entries", stats.Quarantined)
	}
}

// TestChaosSupervisorSinkFailures: transient sink failures are retried to
// full delivery; a sink that dies permanently diverts every later dump to
// the spill ring — degraded, but nothing silently dropped.
func TestChaosSupervisorSinkFailures(t *testing.T) {
	t.Run("transient", func(t *testing.T) {
		src := &scriptedPoller{polls: batchesOf(6, 2)}
		in := faults.New(chaosSeed)
		var dst bytes.Buffer
		sink := in.FlakySink(&dst, 3, 0)
		s, err := collect.NewSupervisor(collect.SupervisorConfig{
			Source:   collect.Fallible(src),
			Triggers: []collect.Trigger{fireAlways{}},
			Sink:     sink,
			Seed:     chaosSeed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			s.Step()
		}
		stats := s.Stats()
		if stats.SinkErrors == 0 {
			t.Fatal("no sink errors injected")
		}
		if stats.Dumps != 6 || stats.DumpsWritten != 6 || stats.Spilled != 0 {
			t.Fatalf("transient sink not fully absorbed: %+v", stats)
		}
		if dst.Len() == 0 {
			t.Fatal("nothing reached the sink")
		}
	})

	t.Run("permanent", func(t *testing.T) {
		src := &scriptedPoller{polls: batchesOf(8, 2)}
		in := faults.New(chaosSeed)
		var dst bytes.Buffer
		sink := in.FlakySink(&dst, 0, 2) // 2 writes succeed, then it dies
		s, err := collect.NewSupervisor(collect.SupervisorConfig{
			Source:   collect.Fallible(src),
			Triggers: []collect.Trigger{fireAlways{}},
			Sink:     sink,
			Seed:     chaosSeed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			s.Step()
		}
		stats := s.Stats()
		if !s.Health().SinkFailed {
			t.Fatal("permanent sink failure not diagnosed")
		}
		if stats.Dumps != 8 || stats.DumpsWritten != 2 {
			t.Fatalf("delivery accounting: %+v", stats)
		}
		// Graceful degradation: every undelivered dump is in the spill
		// ring, none dropped.
		if stats.Spilled != 6 || stats.SpillDropped != 0 || len(s.Spill()) != 6 {
			t.Fatalf("spill accounting: %+v (ring %d)", stats, len(s.Spill()))
		}
	})
}

// TestChaosAdaptiveResizeRealBuffer drives the supervisor's graceful
// degradation against a real core.Buffer: sustained loss pressure must
// grow the traced buffer, and a quiet source must shrink it back.
func TestChaosAdaptiveResizeRealBuffer(t *testing.T) {
	b, err := core.New(core.Options{Cores: 1, BlockSize: 256, ActiveBlocks: 2, Ratio: 2, MaxRatio: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := b.NewReader()
	defer r.Close()
	s, err := collect.NewSupervisor(collect.SupervisorConfig{
		Source:      collect.Fallible(r),
		Triggers:    []collect.Trigger{&collect.LossDetector{Tolerance: 4}},
		Resizer:     b,
		MaxRatio:    8,
		GrowAfter:   2,
		ShrinkAfter: 4,
		Seed:        chaosSeed,
	})
	if err != nil {
		t.Fatal(err)
	}

	p := &tracer.FixedProc{CoreID: 0, TID: 1}
	var stamp uint64
	burst := func(n int) {
		for i := 0; i < n; i++ {
			stamp++
			if err := b.Write(p, &tracer.Entry{Stamp: stamp, TS: stamp, TID: 1, Payload: make([]byte, 8)}); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
	}

	// Overrun the 1 KiB buffer between polls: sustained loss pressure.
	for i := 0; i < 8; i++ {
		burst(300)
		s.Step()
	}
	stats := s.Stats()
	if stats.Grows == 0 {
		t.Fatalf("loss pressure never grew the buffer: %+v", stats)
	}
	grownRatio := b.Ratio()
	if grownRatio <= 2 {
		t.Fatalf("ratio %d after sustained loss", grownRatio)
	}

	// Source goes quiet: pressure subsides, the buffer shrinks back.
	for i := 0; i < 32 && b.Ratio() > 2; i++ {
		s.Step()
	}
	stats = s.Stats()
	if stats.Shrinks == 0 || b.Ratio() != 2 {
		t.Fatalf("pressure subsided but ratio %d (shrinks %d)", b.Ratio(), stats.Shrinks)
	}
	if errs := s.ResizeErrors(); len(errs) != 0 {
		t.Fatalf("resize errors: %v", errs)
	}
	if !b.Verify().Ok() {
		t.Fatalf("buffer inconsistent after adaptive resizing: %v", b.Verify().Violations)
	}
}

// TestChaosDeterministicSchedules: the acceptance bar for the injector —
// one seed, one fault plan. A full pipeline scenario run twice with the
// same seed injects the identical schedule at every hook and produces
// identical pipeline counters; a different seed plans differently.
func TestChaosDeterministicSchedules(t *testing.T) {
	run := func(seed int64) (map[string][]string, collect.SupervisorStats) {
		src := &scriptedPoller{polls: batchesOf(40, 2)}
		in := faults.New(seed)
		fp := in.FlakyPoller(src, 0.3, 0.5)
		var dst bytes.Buffer
		sink := in.FlakySink(&dst, 2, 30)
		s, err := collect.NewSupervisor(collect.SupervisorConfig{
			Source:   fp,
			Triggers: []collect.Trigger{fireAlways{}},
			Sink:     sink,
			Seed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 250; i++ {
			s.Step()
		}
		scheds := map[string][]string{}
		for _, h := range in.Hooks() {
			scheds[h] = in.Schedule(h)
		}
		return scheds, s.Stats()
	}

	schedA, statsA := run(chaosSeed)
	schedB, statsB := run(chaosSeed)
	if !reflect.DeepEqual(schedA, schedB) {
		t.Fatalf("same seed, different fault plans:\n%v\n%v", schedA, schedB)
	}
	if statsA != statsB {
		t.Fatalf("same seed, different pipeline outcomes:\n%+v\n%+v", statsA, statsB)
	}
	schedC, _ := run(chaosSeed + 1)
	if reflect.DeepEqual(schedA["poller/err"], schedC["poller/err"]) {
		t.Fatalf("different seeds planned the same poll-error schedule: %v", schedA["poller/err"])
	}
}
