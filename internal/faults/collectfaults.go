// Collection-pipeline faults: flaky poll sources and dump sinks. These
// wrap the real source/sink and inject the transport failures a daemon
// collector sees in production — failed polls, torn (partial) batches,
// transiently or permanently failing dump writes — without ever losing
// events themselves: everything held back by a fault is delivered once
// the fault clears, so any loss observed downstream is the pipeline's.
package faults

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"btrace/internal/collect"
	"btrace/internal/tracer"
)

// ErrInjected marks every transient error produced by this package.
var ErrInjected = errors.New("faults: injected failure")

// FlakyPoller wraps a collect.Poller as a collect.FalliblePoller whose
// polls fail with probability ErrProb and, when they succeed, are torn
// (only a prefix of the batch is delivered; the rest arrives on the next
// successful poll) with probability TearProb. Wedge switches the source
// to permanent failure until Heal — the frozen-source scenario the
// supervisor's self-watchdog must detect.
type FlakyPoller struct {
	in  *Injector
	src collect.Poller

	// ErrProb is the probability that a poll fails.
	ErrProb float64
	// TearProb is the probability that a successful poll is torn.
	TearProb float64

	mu            sync.Mutex
	wedged        bool
	pending       []tracer.Entry
	pendingMissed uint64
	polls         uint64
	failures      uint64
	tears         uint64
}

// FlakyPoller wraps src with the given fault probabilities.
func (in *Injector) FlakyPoller(src collect.Poller, errProb, tearProb float64) *FlakyPoller {
	return &FlakyPoller{in: in, src: src, ErrProb: errProb, TearProb: tearProb}
}

// Wedge makes every subsequent poll fail until Heal.
func (f *FlakyPoller) Wedge() {
	f.mu.Lock()
	f.wedged = true
	f.mu.Unlock()
	f.in.record("poller", "wedge")
}

// Heal clears a Wedge.
func (f *FlakyPoller) Heal() {
	f.mu.Lock()
	f.wedged = false
	f.mu.Unlock()
	f.in.record("poller", "heal")
}

// Poll implements collect.FalliblePoller. A failed poll consumes nothing
// from the underlying source.
func (f *FlakyPoller) Poll() ([]tracer.Entry, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.polls++
	if f.wedged {
		f.failures++
		return nil, 0, fmt.Errorf("%w: poller wedged", ErrInjected)
	}
	if f.in.decide("poller/err", f.ErrProb) {
		f.failures++
		return nil, 0, fmt.Errorf("%w: poll error", ErrInjected)
	}
	es, missed := f.src.Poll()
	// Prepend what an earlier tear held back; its missed count is owed too.
	if len(f.pending) > 0 || f.pendingMissed > 0 {
		es = append(append([]tracer.Entry(nil), f.pending...), es...)
		missed += f.pendingMissed
		f.pending, f.pendingMissed = nil, 0
	}
	if len(es) > 1 && f.in.decide("poller/tear", f.TearProb) {
		f.tears++
		cut := len(es) / 2
		f.pending = append([]tracer.Entry(nil), es[cut:]...)
		es = es[:cut]
	}
	return es, missed, nil
}

// Stats returns (polls attempted, injected failures, torn batches).
func (f *FlakyPoller) Stats() (polls, failures, tears uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.polls, f.failures, f.tears
}

// FlakySink wraps an io.Writer dump sink: the first FailFirst writes fail
// transiently, and once DieAfter (if positive) successful or failed
// writes have been attempted, every later write fails permanently
// (wrapping collect.ErrPermanent, so a supervisor spills instead of
// retrying forever).
type FlakySink struct {
	in  *Injector
	dst io.Writer

	// FailFirst is the number of initial writes that fail transiently.
	FailFirst int
	// DieAfter, when positive, is the number of write attempts after
	// which the sink fails permanently.
	DieAfter int

	mu       sync.Mutex
	writes   uint64
	failures uint64
}

// FlakySink wraps dst.
func (in *Injector) FlakySink(dst io.Writer, failFirst, dieAfter int) *FlakySink {
	return &FlakySink{in: in, dst: dst, FailFirst: failFirst, DieAfter: dieAfter}
}

// Write implements io.Writer.
func (s *FlakySink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes++
	if s.DieAfter > 0 && s.writes > uint64(s.DieAfter) {
		s.failures++
		s.in.record("sink", fmt.Sprintf("permanent#%d", s.writes))
		return 0, fmt.Errorf("faults: sink died: %w", collect.ErrPermanent)
	}
	if s.writes <= uint64(s.FailFirst) {
		s.failures++
		s.in.record("sink", fmt.Sprintf("transient#%d", s.writes))
		return 0, fmt.Errorf("%w: transient sink failure", ErrInjected)
	}
	return s.dst.Write(p)
}

// Stats returns (write attempts, injected failures).
func (s *FlakySink) Stats() (writes, failures uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes, s.failures
}

var _ collect.FalliblePoller = (*FlakyPoller)(nil)
var _ io.Writer = (*FlakySink)(nil)
