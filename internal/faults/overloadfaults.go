// Overload-storm faults: an oversubscribed producer and a flaky durable
// store. Together they form the chaos suite's overload schedule — calm
// phases where the pipeline keeps up alternating with storm phases where
// the source floods it and the store's write path fails — so the
// collector's adaptive overload control (internal/overload) can be
// driven through whole engage → degrade → recover cycles
// deterministically.
package faults

import (
	"fmt"
	"sync"

	"btrace/internal/collect"
	"btrace/internal/tracer"
)

// BurstConfig shapes a BurstSource's deterministic load schedule.
type BurstConfig struct {
	// CalmPerPoll / StormPerPoll are the events returned per poll in the
	// respective phase (defaults 4 and 64).
	CalmPerPoll  int
	StormPerPoll int
	// CalmPolls / StormPolls are the phase lengths in polls (defaults 16
	// each). A cycle is one calm phase followed by one storm phase.
	CalmPolls  int
	StormPolls int
	// Cycles is the number of calm→storm cycles; after the last the
	// source goes quiet (empty polls) forever (default 1).
	Cycles int
	// StormMissed is the per-poll missed count reported during storms —
	// the overwrite loss an oversubscribed ring exhibits (default
	// 3×StormPerPoll, so the storm loss rate reads 0.75).
	StormMissed uint64
	// Categories cycles the generated events' categories (default {1}).
	Categories []uint8
	// PayloadBytes attaches a payload of that size to every event.
	PayloadBytes int
	// StartTS and TSStepNs shape the virtual clock: the first event is
	// stamped StartTS and each subsequent one advances TSStepNs
	// (defaults 1 and 1000).
	StartTS  uint64
	TSStepNs uint64
}

func (c BurstConfig) withDefaults() BurstConfig {
	if c.CalmPerPoll <= 0 {
		c.CalmPerPoll = 4
	}
	if c.StormPerPoll <= 0 {
		c.StormPerPoll = 64
	}
	if c.CalmPolls <= 0 {
		c.CalmPolls = 16
	}
	if c.StormPolls <= 0 {
		c.StormPolls = 16
	}
	if c.Cycles <= 0 {
		c.Cycles = 1
	}
	if c.StormMissed == 0 {
		c.StormMissed = 3 * uint64(c.StormPerPoll)
	}
	if len(c.Categories) == 0 {
		c.Categories = []uint8{1}
	}
	if c.StartTS == 0 {
		c.StartTS = 1
	}
	if c.TSStepNs == 0 {
		c.TSStepNs = 1000
	}
	return c
}

// BurstSource is a deterministic collect.FalliblePoller alternating calm
// and storm phases per its BurstConfig. Every entry it produces is
// well-formed for the supervisor's Verifier — unique globally increasing
// stamps, monotonic timestamps, non-zero everything — so any loss
// observed downstream is the overload machinery's own doing, never the
// source's. Phase transitions are recorded in the injector's "burst"
// schedule.
type BurstSource struct {
	in  *Injector
	cfg BurstConfig

	mu       sync.Mutex
	polls    int
	stamp    uint64
	ts       uint64
	produced uint64
	storming bool
}

// BurstSource creates a burst source following cfg's schedule.
func (in *Injector) BurstSource(cfg BurstConfig) *BurstSource {
	cfg = cfg.withDefaults()
	return &BurstSource{in: in, cfg: cfg, stamp: 1, ts: cfg.StartTS}
}

// phaseAt maps a poll index to (storming, quiet).
func (s *BurstSource) phaseAt(poll int) (storm, quiet bool) {
	cycle := s.cfg.CalmPolls + s.cfg.StormPolls
	if poll >= s.cfg.Cycles*cycle {
		return false, true
	}
	return poll%cycle >= s.cfg.CalmPolls, false
}

// Poll implements collect.FalliblePoller; it never fails.
func (s *BurstSource) Poll() ([]tracer.Entry, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	storm, quiet := s.phaseAt(s.polls)
	s.polls++
	if quiet {
		if s.storming {
			s.storming = false
			s.in.record("burst", fmt.Sprintf("quiet#%d", s.polls-1))
		}
		return nil, 0, nil
	}
	if storm != s.storming {
		s.storming = storm
		phase := "calm"
		if storm {
			phase = "storm"
		}
		s.in.record("burst", fmt.Sprintf("%s#%d", phase, s.polls-1))
	}
	n, missed := s.cfg.CalmPerPoll, uint64(0)
	if storm {
		n, missed = s.cfg.StormPerPoll, s.cfg.StormMissed
	}
	es := make([]tracer.Entry, n)
	for i := range es {
		es[i] = tracer.Entry{
			Stamp:    s.stamp,
			TS:       s.ts,
			TID:      uint32(200 + s.stamp%8),
			Category: s.cfg.Categories[int(s.stamp)%len(s.cfg.Categories)],
			Level:    uint8(1 + s.stamp%3),
		}
		if s.cfg.PayloadBytes > 0 {
			es[i].Payload = make([]byte, s.cfg.PayloadBytes)
		}
		s.stamp++
		s.ts += s.cfg.TSStepNs
	}
	s.produced += uint64(n)
	return es, missed, nil
}

// Storming reports whether the next poll falls in a storm phase.
func (s *BurstSource) Storming() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	storm, _ := s.phaseAt(s.polls)
	return storm
}

// Quiet reports whether the schedule is exhausted.
func (s *BurstSource) Quiet() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, quiet := s.phaseAt(s.polls)
	return quiet
}

// Produced returns the total events emitted so far.
func (s *BurstSource) Produced() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.produced
}

// FlakyStore wraps a collect.DumpStore with injected append failures:
// probabilistic ones via ErrProb and a deterministic Wedge/Heal switch —
// the flaky disk under an overload storm. It deliberately implements
// only the synchronous AppendEntries surface (no async staging, no
// WriteErr), so a supervisor driving it exercises its retry-budget and
// spill paths rather than the fast-fail ones.
type FlakyStore struct {
	in  *Injector
	dst collect.DumpStore

	// ErrProb is the probability that an append fails.
	ErrProb float64

	mu       sync.Mutex
	wedged   bool
	appends  uint64
	events   uint64
	failures uint64
}

// FlakyStore wraps dst with the given failure probability.
func (in *Injector) FlakyStore(dst collect.DumpStore, errProb float64) *FlakyStore {
	return &FlakyStore{in: in, dst: dst, ErrProb: errProb}
}

// Wedge makes every subsequent append fail until Heal. Idempotent; only
// state changes are recorded in the schedule.
func (f *FlakyStore) Wedge() {
	f.mu.Lock()
	changed := !f.wedged
	f.wedged = true
	f.mu.Unlock()
	if changed {
		f.in.record("store", "wedge")
	}
}

// Heal clears a Wedge.
func (f *FlakyStore) Heal() {
	f.mu.Lock()
	changed := f.wedged
	f.wedged = false
	f.mu.Unlock()
	if changed {
		f.in.record("store", "heal")
	}
}

// AppendEntries implements collect.DumpStore. A failed append consumes
// nothing.
func (f *FlakyStore) AppendEntries(es []tracer.Entry) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.appends++
	if f.wedged {
		f.failures++
		return fmt.Errorf("%w: store wedged", ErrInjected)
	}
	if f.in.decide("store/err", f.ErrProb) {
		f.failures++
		return fmt.Errorf("%w: append error", ErrInjected)
	}
	if err := f.dst.AppendEntries(es); err != nil {
		return err
	}
	f.events += uint64(len(es))
	return nil
}

// Stats returns (append attempts, events appended, injected failures).
func (f *FlakyStore) Stats() (appends, events, failures uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appends, f.events, f.failures
}

var (
	_ collect.FalliblePoller = (*BurstSource)(nil)
	_ collect.DumpStore      = (*FlakyStore)(nil)
)
