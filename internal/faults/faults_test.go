package faults_test

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"

	"btrace/internal/collect"
	"btrace/internal/faults"
	"btrace/internal/sim"
	"btrace/internal/tracer"
)

// scriptedPoller replays fixed batches (a collect.Poller).
type scriptedPoller struct {
	polls [][]tracer.Entry
	i     int
}

func (s *scriptedPoller) Poll() ([]tracer.Entry, uint64) {
	if s.i >= len(s.polls) {
		return nil, 0
	}
	es := s.polls[s.i]
	s.i++
	return es, 0
}

func entries(stamps ...uint64) []tracer.Entry {
	es := make([]tracer.Entry, len(stamps))
	for i, s := range stamps {
		es[i] = tracer.Entry{Stamp: s, TS: s}
	}
	return es
}

// TestFlakyPollerDeterministicSchedule: the same seed plans the same
// fault schedule; a different seed plans a different one.
func TestFlakyPollerDeterministicSchedule(t *testing.T) {
	run := func(seed int64) []string {
		in := faults.New(seed)
		f := in.FlakyPoller(&scriptedPoller{}, 0.5, 0)
		for i := 0; i < 64; i++ {
			f.Poll()
		}
		return in.Schedule("poller/err")
	}
	a, b := run(1), run(1)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("probability 0.5 over 64 polls fired nothing")
	}
	if c := run(2); reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical schedules: %v", a)
	}
}

// TestFlakyPollerNeverLosesEvents: whatever mix of errors and tears is
// injected, every source event is eventually delivered exactly once, in
// order.
func TestFlakyPollerNeverLosesEvents(t *testing.T) {
	src := &scriptedPoller{polls: [][]tracer.Entry{
		entries(1, 2, 3, 4),
		entries(5, 6),
		entries(7, 8, 9, 10, 11),
	}}
	in := faults.New(7)
	f := in.FlakyPoller(src, 0.3, 0.8)
	var got []uint64
	for i := 0; i < 200 && len(got) < 11; i++ {
		es, _, err := f.Poll()
		if err != nil {
			continue
		}
		for _, e := range es {
			got = append(got, e.Stamp)
		}
	}
	want := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	_, failures, tears := f.Stats()
	if failures == 0 || tears == 0 {
		t.Fatalf("faults not exercised: failures=%d tears=%d", failures, tears)
	}
}

func TestFlakyPollerWedgeHeal(t *testing.T) {
	src := &scriptedPoller{polls: [][]tracer.Entry{entries(1)}}
	in := faults.New(1)
	f := in.FlakyPoller(src, 0, 0)
	f.Wedge()
	if _, _, err := f.Poll(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("wedged poll: %v", err)
	}
	f.Heal()
	es, _, err := f.Poll()
	if err != nil || len(es) != 1 {
		t.Fatalf("healed poll: %v %v", es, err)
	}
	if sched := in.Schedule("poller"); !reflect.DeepEqual(sched, []string{"wedge", "heal"}) {
		t.Fatalf("schedule: %v", sched)
	}
}

func TestFlakySinkTransitions(t *testing.T) {
	var dst bytes.Buffer
	in := faults.New(1)
	s := in.FlakySink(&dst, 2, 4)
	payload := []byte("rec")
	// Writes 1-2 transient, 3-4 succeed, 5+ permanent.
	for i, want := range []error{faults.ErrInjected, faults.ErrInjected, nil, nil, collect.ErrPermanent, collect.ErrPermanent} {
		_, err := s.Write(payload)
		if want == nil {
			if err != nil {
				t.Fatalf("write %d: %v", i+1, err)
			}
			continue
		}
		if !errors.Is(err, want) {
			t.Fatalf("write %d: got %v, want %v", i+1, err, want)
		}
	}
	if dst.Len() != 2*len(payload) {
		t.Fatalf("sink bytes: %d", dst.Len())
	}
	writes, failures := s.Stats()
	if writes != 6 || failures != 4 {
		t.Fatalf("stats: writes=%d failures=%d", writes, failures)
	}
}

func TestPreemptStormForcesPreemptions(t *testing.T) {
	m, err := sim.NewMachine(sim.Topology{Middle: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(5)
	storm := in.PreemptStorm(1.0) // every window point preempts
	th, err := m.NewThread(sim.ThreadConfig{ID: 3, Core: 0})
	if err != nil {
		t.Fatal(err)
	}
	th.SetFaultController(storm)
	th.Acquire()
	th.MaybePreempt(tracer.PreemptBeforeCopy)
	th.MaybePreempt(tracer.PreemptBeforeConfirm)
	th.MaybePreempt(tracer.PreemptOutside) // outside the window: untouched
	th.Release()
	if storm.Fired() != 2 || th.Preempted() != 2 {
		t.Fatalf("fired=%d preempted=%d", storm.Fired(), th.Preempted())
	}
	if len(in.Schedule("storm/t3/before-copy")) != 1 {
		t.Fatalf("schedule: %v", in.Hooks())
	}
	// Preemption-disable scopes shield the thread from the storm, as they
	// do from ordinary preemption.
	restore := th.DisablePreemption()
	th.MaybePreempt(tracer.PreemptBeforeCopy)
	restore()
	if storm.Fired() != 2 {
		t.Fatal("storm fired inside a preemption-disable scope")
	}
}

func TestStragglerStallAndRelease(t *testing.T) {
	m, err := sim.NewMachine(sim.Topology{Middle: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(5)
	str := in.Straggler(0, 2)
	th, err := m.NewThread(sim.ThreadConfig{ID: 0, Core: 0})
	if err != nil {
		t.Fatal(err)
	}
	th.SetFaultController(str)

	var wg sync.WaitGroup
	wg.Add(1)
	stalledAt := make(chan struct{})
	go func() {
		defer wg.Done()
		th.Acquire()
		defer th.Release()
		th.MaybePreempt(tracer.PreemptBeforeConfirm) // hit 1: armed, no stall
		close(stalledAt)
		th.MaybePreempt(tracer.PreemptBeforeConfirm) // hit 2: stalls until release
	}()
	<-stalledAt
	for !str.Stalled() { // the thread is parked off its core
	}
	// While the straggler is parked, its core is free for others.
	other, err := m.NewThread(sim.ThreadConfig{ID: 1, Core: 0})
	if err != nil {
		t.Fatal(err)
	}
	other.Acquire()
	other.Release()
	str.Release()
	str.Release() // idempotent
	wg.Wait()
	if !str.EverStalled() || str.Stalled() {
		t.Fatalf("ever=%v stalled=%v", str.EverStalled(), str.Stalled())
	}
	if th.Stalls() != 1 {
		t.Fatalf("stalls = %d", th.Stalls())
	}
}

// stubController always returns a fixed action.
type stubController struct {
	action  sim.FaultAction
	stalled bool
}

func (c *stubController) At(*sim.Thread, tracer.PreemptPoint) sim.FaultAction { return c.action }
func (c *stubController) Stall(*sim.Thread, tracer.PreemptPoint)              { c.stalled = true }

func TestChainRoutesStall(t *testing.T) {
	m, _ := sim.NewMachine(sim.Topology{Middle: 1})
	th, _ := m.NewThread(sim.ThreadConfig{ID: 0, Core: 0})
	none := &stubController{action: sim.FaultNone}
	staller := &stubController{action: sim.FaultStall}
	ch := faults.NewChain(none, staller)
	if a := ch.At(th, tracer.PreemptBeforeConfirm); a != sim.FaultStall {
		t.Fatalf("chain action: %v", a)
	}
	ch.Stall(th, tracer.PreemptBeforeConfirm)
	if !staller.stalled || none.stalled {
		t.Fatalf("stall routed wrong: staller=%v none=%v", staller.stalled, none.stalled)
	}
}

func TestHotplugRecordsSchedule(t *testing.T) {
	m, _ := sim.NewMachine(sim.Topology{Middle: 2})
	in := faults.New(1)
	hp := in.Hotplug(m)
	if err := hp.Unplug(1); err != nil {
		t.Fatal(err)
	}
	if m.Online(1) {
		t.Fatal("core still online")
	}
	if err := hp.Replug(1); err != nil {
		t.Fatal(err)
	}
	if !m.Online(1) {
		t.Fatal("core still offline")
	}
	want := []string{"unplug c1", "replug c1"}
	if got := in.Schedule("hotplug"); !reflect.DeepEqual(got, want) {
		t.Fatalf("schedule %v, want %v", got, want)
	}
}
