// Package faults is a deterministic, seed-driven fault injector for the
// BTrace simulation and collection pipeline. The paper's production
// deployment (§2.1, §6) runs the tracer behind watchdog daemons because
// real devices misbehave — threads freeze mid-write, drivers stall, CPUs
// hot-unplug — and the algorithm's availability mechanisms (block
// skipping, out-of-order confirmation, implicit reclaiming) exist
// precisely to survive those events. This package *provokes* them on
// demand so the chaos suite can assert every DESIGN.md invariant under
// each scenario.
//
// All decisions are drawn from per-hook PRNG streams derived from one
// root seed, so the injected schedule of every hook is a deterministic
// function of (seed, hook name, invocation index): the same seed always
// plans the same faults, regardless of how the system under test
// interleaves. The consumed prefix of a hook's stream can differ across
// runs of a concurrent scenario (threads race to the hooks), but the
// stream contents never do.
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"btrace/internal/sim"
	"btrace/internal/tracer"
)

// Injector is the root of a fault plan. All sub-faults created from one
// Injector share its seed and record their decisions in its per-hook
// schedule log. An Injector is safe for concurrent use.
type Injector struct {
	seed int64

	mu    sync.Mutex
	rngs  map[string]*rand.Rand
	count map[string]uint64
	sched map[string][]string
}

// New creates an Injector rooted at seed.
func New(seed int64) *Injector {
	return &Injector{
		seed:  seed,
		rngs:  map[string]*rand.Rand{},
		count: map[string]uint64{},
		sched: map[string][]string{},
	}
}

// Seed returns the root seed.
func (in *Injector) Seed() int64 { return in.seed }

// hookRNG returns the named hook's PRNG stream, creating it on first use
// from the root seed and the hook name. Callers must hold in.mu.
func (in *Injector) hookRNG(hook string) *rand.Rand {
	r, ok := in.rngs[hook]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(hook))
		r = rand.New(rand.NewSource(in.seed ^ int64(h.Sum64())))
		in.rngs[hook] = r
	}
	return r
}

// decide draws the hook's next decision with probability prob and logs a
// fire in the hook's schedule.
func (in *Injector) decide(hook string, prob float64) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.count[hook]
	in.count[hook]++
	fire := in.hookRNG(hook).Float64() < prob
	if fire {
		in.sched[hook] = append(in.sched[hook], fmt.Sprintf("#%d", n))
	}
	return fire
}

// record appends an unconditional event to the hook's schedule.
func (in *Injector) record(hook, event string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sched[hook] = append(in.sched[hook], event)
}

// Schedule returns a copy of the named hook's recorded schedule: for
// probabilistic hooks the fired invocation indices, for event hooks the
// recorded events, in order.
func (in *Injector) Schedule(hook string) []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.sched[hook]...)
}

// Hooks returns the sorted names of all hooks that recorded at least one
// schedule entry.
func (in *Injector) Hooks() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	hooks := make([]string, 0, len(in.sched))
	for h := range in.sched {
		hooks = append(hooks, h)
	}
	sort.Strings(hooks)
	return hooks
}

// pointName names a preemption point for hook identifiers.
func pointName(p tracer.PreemptPoint) string {
	switch p {
	case tracer.PreemptBeforeCopy:
		return "before-copy"
	case tracer.PreemptBeforeConfirm:
		return "before-confirm"
	default:
		return "outside"
	}
}

// PreemptStorm is a sim.FaultController that forces preemptions inside
// the allocate→confirm window (the §2.2 Observation 2 hazard) with a
// per-point probability. Each (thread, point) pair draws from its own
// deterministic stream.
type PreemptStorm struct {
	in     *Injector
	prob   float64
	window map[tracer.PreemptPoint]bool
	fired  atomic.Uint64
}

// PreemptStorm creates a storm firing with probability prob at the given
// points; with no points it targets the allocate→confirm window
// (PreemptBeforeCopy and PreemptBeforeConfirm).
func (in *Injector) PreemptStorm(prob float64, points ...tracer.PreemptPoint) *PreemptStorm {
	if len(points) == 0 {
		points = []tracer.PreemptPoint{tracer.PreemptBeforeCopy, tracer.PreemptBeforeConfirm}
	}
	w := map[tracer.PreemptPoint]bool{}
	for _, p := range points {
		w[p] = true
	}
	return &PreemptStorm{in: in, prob: prob, window: w}
}

// At implements sim.FaultController.
func (s *PreemptStorm) At(t *sim.Thread, p tracer.PreemptPoint) sim.FaultAction {
	if !s.window[p] {
		return sim.FaultNone
	}
	if s.in.decide(fmt.Sprintf("storm/t%d/%s", t.Thread(), pointName(p)), s.prob) {
		s.fired.Add(1)
		return sim.FaultPreempt
	}
	return sim.FaultNone
}

// Stall implements sim.FaultController; a storm never stalls.
func (s *PreemptStorm) Stall(*sim.Thread, tracer.PreemptPoint) {}

// Fired returns how many preemptions the storm forced.
func (s *PreemptStorm) Fired() uint64 { return s.fired.Load() }

// Straggler is a sim.FaultController that freezes one thread at a
// preemption point while it holds unconfirmed bytes — the stalled (or
// killed) writer of §3.4 whose candidates other producers must skip. The
// thread parks off its core until Release; a straggler that is never
// released during the measurement window models a killed writer.
type Straggler struct {
	in     *Injector
	thread int
	point  tracer.PreemptPoint
	after  int

	mu       sync.Mutex
	hits     int
	armed    bool
	released bool
	stalled  bool
	ever     bool
	release  chan struct{}
}

// Straggler freezes thread threadID the afterHits-th time it reaches
// PreemptBeforeConfirm (allocation done, confirmation pending).
func (in *Injector) Straggler(threadID, afterHits int) *Straggler {
	return &Straggler{
		in:      in,
		thread:  threadID,
		point:   tracer.PreemptBeforeConfirm,
		after:   afterHits,
		armed:   true,
		release: make(chan struct{}),
	}
}

// At implements sim.FaultController.
func (s *Straggler) At(t *sim.Thread, p tracer.PreemptPoint) sim.FaultAction {
	if t.Thread() != s.thread || p != s.point {
		return sim.FaultNone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits++
	if !s.armed || s.released || s.hits != s.after {
		return sim.FaultNone
	}
	s.armed = false
	s.in.record(fmt.Sprintf("straggler/t%d", s.thread), fmt.Sprintf("stall@%s#%d", pointName(p), s.hits))
	return sim.FaultStall
}

// Stall implements sim.FaultController: parks the (descheduled) thread
// until Release.
func (s *Straggler) Stall(*sim.Thread, tracer.PreemptPoint) {
	s.mu.Lock()
	s.stalled = true
	s.ever = true
	s.mu.Unlock()
	<-s.release
	s.mu.Lock()
	s.stalled = false
	s.mu.Unlock()
}

// Release unfreezes the straggler (idempotent).
func (s *Straggler) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.released {
		return
	}
	s.released = true
	close(s.release)
	s.in.record(fmt.Sprintf("straggler/t%d", s.thread), "release")
}

// Stalled reports whether the thread is currently parked.
func (s *Straggler) Stalled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stalled
}

// EverStalled reports whether the fault ever engaged.
func (s *Straggler) EverStalled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ever
}

// Chain composes fault controllers: At returns the first non-FaultNone
// action and routes the subsequent Stall to the controller that asked
// for it.
type Chain struct {
	cs []sim.FaultController

	mu      sync.Mutex
	staller map[int]sim.FaultController
}

// NewChain composes controllers, consulted in order.
func NewChain(cs ...sim.FaultController) *Chain {
	return &Chain{cs: cs, staller: map[int]sim.FaultController{}}
}

// At implements sim.FaultController.
func (c *Chain) At(t *sim.Thread, p tracer.PreemptPoint) sim.FaultAction {
	for _, fc := range c.cs {
		switch a := fc.At(t, p); a {
		case sim.FaultNone:
		case sim.FaultStall:
			c.mu.Lock()
			c.staller[t.Thread()] = fc
			c.mu.Unlock()
			return a
		default:
			return a
		}
	}
	return sim.FaultNone
}

// Stall implements sim.FaultController.
func (c *Chain) Stall(t *sim.Thread, p tracer.PreemptPoint) {
	c.mu.Lock()
	fc := c.staller[t.Thread()]
	delete(c.staller, t.Thread())
	c.mu.Unlock()
	if fc != nil {
		fc.Stall(t, p)
	}
}

// Hotplug drives CPU hot-unplug events against a machine, recording them
// in the injector's schedule so a scenario's hotplug timeline is part of
// its reproducible plan.
type Hotplug struct {
	in *Injector
	m  *sim.Machine
}

// Hotplug creates a hotplug driver for m.
func (in *Injector) Hotplug(m *sim.Machine) *Hotplug {
	return &Hotplug{in: in, m: m}
}

// Unplug takes the core offline.
func (h *Hotplug) Unplug(core int) error {
	h.in.record("hotplug", fmt.Sprintf("unplug c%d", core))
	return h.m.SetOnline(core, false)
}

// Replug brings the core back online.
func (h *Hotplug) Replug(core int) error {
	h.in.record("hotplug", fmt.Sprintf("replug c%d", core))
	return h.m.SetOnline(core, true)
}

var (
	_ sim.FaultController = (*PreemptStorm)(nil)
	_ sim.FaultController = (*Straggler)(nil)
	_ sim.FaultController = (*Chain)(nil)
)
