package collect

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"btrace/internal/tracer"
)

// scriptedSource replays a script of fallible polls, then returns empty
// successful polls forever.
type scriptedSource struct {
	steps []scriptedPoll
	i     int
}

type scriptedPoll struct {
	es     []tracer.Entry
	missed uint64
	err    error
}

func (s *scriptedSource) Poll() ([]tracer.Entry, uint64, error) {
	if s.i >= len(s.steps) {
		return nil, 0, nil
	}
	st := s.steps[s.i]
	s.i++
	return st.es, st.missed, st.err
}

// flakySink fails its first failFirst writes; a negative failFirst means
// every write fails. permanent makes failures wrap ErrPermanent.
type flakySink struct {
	buf       bytes.Buffer
	failFirst int
	permanent bool
	writes    int
}

func (f *flakySink) Write(p []byte) (int, error) {
	f.writes++
	if f.failFirst < 0 || f.writes <= f.failFirst {
		if f.permanent {
			return 0, fmt.Errorf("sink died: %w", ErrPermanent)
		}
		return 0, errors.New("transient sink failure")
	}
	return f.buf.Write(p)
}

func TestNewSupervisorValidation(t *testing.T) {
	if _, err := NewSupervisor(SupervisorConfig{}); err == nil {
		t.Fatal("nil source: expected error")
	}
	s, err := NewSupervisor(SupervisorConfig{Source: &scriptedSource{}})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.PollRetryBudget != 8 || s.cfg.SinkRetryBudget != 8 ||
		s.cfg.BackoffBase != 1 || s.cfg.BackoffMax != 64 || s.cfg.SpillCapacity != 16 {
		t.Fatalf("defaults not applied: %+v", s.cfg)
	}
}

func TestFallibleAdapter(t *testing.T) {
	src := &fakePoller{polls: [][]tracer.Entry{{ev(1, 0, 1)}}, missed: []uint64{3}}
	f := Fallible(src)
	es, missed, err := f.Poll()
	if err != nil || len(es) != 1 || missed != 3 {
		t.Fatalf("adapter: %v %d %v", es, missed, err)
	}
}

// TestSupervisorBackoffAndWedge: consecutive poll failures back off
// exponentially and exhaust the retry budget into a wedged-source
// verdict; a successful poll with traffic clears it.
func TestSupervisorBackoffAndWedge(t *testing.T) {
	src := &scriptedSource{}
	for i := 0; i < 6; i++ {
		src.steps = append(src.steps, scriptedPoll{err: errors.New("poll broke")})
	}
	src.steps = append(src.steps, scriptedPoll{es: []tracer.Entry{ev(1, 0, 1)}})

	s, err := NewSupervisor(SupervisorConfig{
		Source:          src,
		PollRetryBudget: 3,
		BackoffBase:     1,
		BackoffMax:      4,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100 && s.Stats().Polls == 0; i++ {
		s.Step()
		if st := s.Stats(); st.PollErrors >= 3 && st.Polls == 0 && !s.Health().SourceWedged {
			t.Fatalf("budget exhausted (%d errors) but not wedged", st.PollErrors)
		}
	}
	st := s.Stats()
	if st.Polls != 1 || st.PollErrors != 6 {
		t.Fatalf("stats: %+v", st)
	}
	if st.PollBackoffSteps == 0 {
		t.Fatal("no backoff steps recorded")
	}
	if s.Health().SourceWedged {
		t.Fatal("wedge not cleared by successful poll")
	}
}

// TestSupervisorBackoffDeterminism: identical configs and seeds absorb an
// identical failure script in the identical number of steps.
func TestSupervisorBackoffDeterminism(t *testing.T) {
	run := func() (SupervisorStats, int) {
		src := &scriptedSource{}
		for i := 0; i < 5; i++ {
			src.steps = append(src.steps, scriptedPoll{err: errors.New("x")})
		}
		s, err := NewSupervisor(SupervisorConfig{Source: src, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for s.Stats().Polls < 3 {
			s.Step()
			steps++
		}
		return s.Stats(), steps
	}
	a, as := run()
	b, bs := run()
	if a != b || as != bs {
		t.Fatalf("nondeterministic: %+v in %d steps vs %+v in %d steps", a, as, b, bs)
	}
}

func TestSupervisorEmptyPollWedge(t *testing.T) {
	s, err := NewSupervisor(SupervisorConfig{
		Source:          &scriptedSource{},
		WedgeEmptyPolls: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	s.Step()
	if s.Health().SourceWedged {
		t.Fatal("wedged too early")
	}
	s.Step()
	if !s.Health().SourceWedged {
		t.Fatal("silent source not declared wedged")
	}
}

// TestSupervisorQuarantine: inconsistent entries are quarantined into the
// next dump instead of entering the window.
func TestSupervisorQuarantine(t *testing.T) {
	src := &scriptedSource{steps: []scriptedPoll{
		{es: []tracer.Entry{ev(10, 0, 1), ev(10, 1, 1), ev(5, 2, 1), ev(11, 3, 1)}},
		{es: []tracer.Entry{ev(12, 4, 1)}, missed: 100},
	}}
	loss := &LossDetector{Tolerance: 1}
	s, err := NewSupervisor(SupervisorConfig{Source: src, Triggers: []Trigger{loss}})
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Step(); d != nil {
		t.Fatalf("early dump: %+v", d)
	}
	d := s.Step()
	if d == nil {
		t.Fatal("loss trigger did not fire")
	}
	if len(d.Quarantined) != 2 || len(d.Violations) != 2 {
		t.Fatalf("quarantine: %d entries, %d violations (%v)", len(d.Quarantined), len(d.Violations), d.Violations)
	}
	if d.Quarantined[0].Stamp != 10 || d.Quarantined[1].Stamp != 5 {
		t.Fatalf("quarantined stamps: %+v", d.Quarantined)
	}
	for _, e := range d.Events {
		if e.Stamp == 5 {
			t.Fatal("out-of-order entry entered the window")
		}
	}
	if got := s.Stats().Quarantined; got != 2 {
		t.Fatalf("stats.Quarantined = %d", got)
	}
}

// lossyScript builds a source whose polls each carry one event and the
// given missed counts.
func lossyScript(missed ...uint64) *scriptedSource {
	src := &scriptedSource{}
	for i, m := range missed {
		src.steps = append(src.steps, scriptedPoll{
			es:     []tracer.Entry{ev(uint64(i+1), uint64(i), 1)},
			missed: m,
		})
	}
	return src
}

func TestSupervisorSinkTransientRetry(t *testing.T) {
	sink := &flakySink{failFirst: 3}
	s, err := NewSupervisor(SupervisorConfig{
		Source:   lossyScript(50),
		Triggers: []Trigger{&LossDetector{Tolerance: 1}},
		Sink:     sink,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var dumps int
	for i := 0; i < 100 && s.Stats().DumpsWritten == 0; i++ {
		if d := s.Step(); d != nil {
			dumps++
		}
	}
	st := s.Stats()
	if dumps != 1 || st.Dumps != 1 || st.DumpsWritten != 1 {
		t.Fatalf("dump accounting: produced=%d stats=%+v", dumps, st)
	}
	if st.SinkErrors != 3 || st.Spilled != 0 {
		t.Fatalf("sink stats: %+v", st)
	}
	if sink.buf.Len() == 0 {
		t.Fatal("sink received no bytes")
	}
	recs, truncated := tracer.DecodeAll(sink.buf.Bytes())
	if truncated || len(recs) == 0 {
		t.Fatalf("sink content: %d records truncated=%v", len(recs), truncated)
	}
}

func TestSupervisorSinkBudgetSpill(t *testing.T) {
	sink := &flakySink{failFirst: -1} // never recovers, but only transiently
	s, err := NewSupervisor(SupervisorConfig{
		Source:          lossyScript(50),
		Triggers:        []Trigger{&LossDetector{Tolerance: 1}},
		Sink:            sink,
		SinkRetryBudget: 2,
		Seed:            3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100 && s.Stats().Spilled == 0; i++ {
		s.Step()
	}
	st := s.Stats()
	if st.Spilled != 1 || st.SpillDropped != 0 || st.DumpsWritten != 0 {
		t.Fatalf("spill stats: %+v", st)
	}
	if got := len(s.Spill()); got != 1 {
		t.Fatalf("spill ring holds %d dumps", got)
	}
}

func TestSupervisorSinkPermanentSpillAndFlush(t *testing.T) {
	sink := &flakySink{failFirst: 1, permanent: true}
	s, err := NewSupervisor(SupervisorConfig{
		Source:   lossyScript(50),
		Triggers: []Trigger{&LossDetector{Tolerance: 1}},
		Sink:     sink,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100 && s.Stats().Spilled == 0; i++ {
		s.Step()
	}
	if !s.Health().SinkFailed {
		t.Fatal("permanent sink failure not reported")
	}
	st := s.Stats()
	if st.Spilled != 1 || st.SinkErrors != 1 {
		t.Fatalf("permanent failure should spill on first error: %+v", st)
	}
	// The sink heals (failFirst exhausted): Flush drains the spill ring.
	if err := s.Flush(); err != nil {
		t.Fatalf("flush after heal: %v", err)
	}
	if s.Health().SinkFailed || len(s.Spill()) != 0 {
		t.Fatalf("flush left state: %+v, %d spilled", s.Health(), len(s.Spill()))
	}
	if s.Stats().DumpsWritten != 1 || sink.buf.Len() == 0 {
		t.Fatalf("flush did not deliver: %+v", s.Stats())
	}
}

func TestSupervisorSpillRingBound(t *testing.T) {
	sink := &flakySink{failFirst: -1, permanent: true}
	s, err := NewSupervisor(SupervisorConfig{
		Source:        lossyScript(50, 50, 50, 50),
		Triggers:      []Trigger{&LossDetector{Tolerance: 1}},
		Sink:          sink,
		SpillCapacity: 2,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && s.Stats().Spilled < 4; i++ {
		s.Step()
	}
	st := s.Stats()
	if st.Spilled != 4 || st.SpillDropped != 2 {
		t.Fatalf("ring accounting: %+v", st)
	}
	if got := len(s.Spill()); got != 2 {
		t.Fatalf("ring holds %d dumps, want 2", got)
	}
}

// fakeResizer records adaptive resize decisions.
type fakeResizer struct {
	ratio int
	calls []int
	fail  bool
}

func (r *fakeResizer) Ratio() int { return r.ratio }
func (r *fakeResizer) Resize(n int) error {
	if r.fail {
		return errors.New("resize refused")
	}
	r.ratio = n
	r.calls = append(r.calls, n)
	return nil
}

func TestSupervisorAdaptiveResize(t *testing.T) {
	rz := &fakeResizer{ratio: 2}
	s, err := NewSupervisor(SupervisorConfig{
		Source:      lossyScript(9, 9, 9, 9, 0, 0, 0, 0, 0, 0),
		Triggers:    []Trigger{&LossDetector{Tolerance: 5}},
		Resizer:     rz,
		MaxRatio:    8,
		GrowAfter:   2,
		ShrinkAfter: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Step()
	}
	st := s.Stats()
	if st.Grows != 2 {
		t.Fatalf("grows = %d (calls %v)", st.Grows, rz.calls)
	}
	if st.Shrinks != 2 {
		t.Fatalf("shrinks = %d (calls %v)", st.Shrinks, rz.calls)
	}
	// 2 lossy polls grow 2->4, 2 more grow 4->8; each run of 3 clean polls
	// shrinks one halving step back toward the base ratio: 8->4, then 4->2.
	want := []int{4, 8, 4, 2}
	if len(rz.calls) != len(want) {
		t.Fatalf("resize calls %v, want %v", rz.calls, want)
	}
	for i := range want {
		if rz.calls[i] != want[i] {
			t.Fatalf("resize calls %v, want %v", rz.calls, want)
		}
	}
	if len(s.ResizeErrors()) != 0 {
		t.Fatalf("resize errors: %v", s.ResizeErrors())
	}
}

func TestSupervisorResizeErrorSurfaced(t *testing.T) {
	rz := &fakeResizer{ratio: 2, fail: true}
	s, err := NewSupervisor(SupervisorConfig{
		Source:    lossyScript(9, 9),
		Triggers:  []Trigger{&LossDetector{Tolerance: 5}},
		Resizer:   rz,
		MaxRatio:  8,
		GrowAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	s.Step()
	if errs := s.ResizeErrors(); len(errs) != 1 || !strings.Contains(errs[0].Error(), "refused") {
		t.Fatalf("resize errors: %v", errs)
	}
}
