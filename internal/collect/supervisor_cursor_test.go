package collect

import (
	"fmt"
	"testing"

	"btrace/internal/tracer"
)

// arenaCursor simulates the core cursor's ownership contract as hostilely
// as possible: every Next first scribbles over the payload arena handed
// out by the previous call, so any consumer that retained a borrowed
// payload reads garbage.
type arenaCursor struct {
	next    uint64
	total   uint64
	perCall int
	arena   []byte
}

func (c *arenaCursor) Next(batch []tracer.Entry) (int, uint64, error) {
	for i := range c.arena {
		c.arena[i] = 0xEE // invalidate everything handed out previously
	}
	c.arena = c.arena[:0]
	n := 0
	for n < len(batch) && n < c.perCall && c.next <= c.total {
		start := len(c.arena)
		c.arena = append(c.arena, byte(c.next), byte(c.next>>8), byte(c.next^0x5A))
		batch[n] = tracer.Entry{
			Stamp:   c.next,
			TS:      c.next * 10,
			Payload: c.arena[start:len(c.arena):len(c.arena)],
		}
		c.next++
		n++
	}
	return n, 0, nil
}

func (c *arenaCursor) Close() error { return nil }

// TestSupervisorCursorBoundedBatches drives a Supervisor from a cursor
// source: per-step consumption stays bounded by BatchSize, every event is
// ingested exactly once, and dumped windows hold deep copies whose
// payloads survive the cursor reusing its arena.
func TestSupervisorCursorBoundedBatches(t *testing.T) {
	const total = 100
	cur := &arenaCursor{next: 1, total: total, perCall: 64}
	fire := &fireAt{at: total} // fires when the last stamp is observed
	s, err := NewSupervisor(SupervisorConfig{
		Cursor:    cur,
		BatchSize: 16, // tighter than the cursor's own perCall bound
		Triggers:  []Trigger{fire},
	})
	if err != nil {
		t.Fatal(err)
	}
	var dump *Dump
	for i := 0; i < total; i++ {
		if d := s.Step(); d != nil {
			dump = d
			break
		}
	}
	if dump == nil {
		t.Fatal("trigger never fired")
	}
	if got := s.Stats().Polls; got < total/16 {
		t.Fatalf("only %d polls for %d events with batch 16: batches not bounded?", got, total)
	}
	if len(dump.Events) != total {
		t.Fatalf("dump window has %d events, want %d", len(dump.Events), total)
	}
	// Force one more arena invalidation, then verify the dumped payloads:
	// a shallow copy anywhere in the pipeline shows up as 0xEE garbage.
	var scratch [16]tracer.Entry
	cur.total = 0
	if _, _, err := cur.Next(scratch[:]); err != nil {
		t.Fatal(err)
	}
	for i, e := range dump.Events {
		if e.Stamp != uint64(i+1) {
			t.Fatalf("event %d: stamp %d, want %d", i, e.Stamp, i+1)
		}
		want := []byte{byte(e.Stamp), byte(e.Stamp >> 8), byte(e.Stamp ^ 0x5A)}
		if string(e.Payload) != string(want) {
			t.Fatalf("stamp %d: payload %x, want %x (window kept a borrowed slice)",
				e.Stamp, e.Payload, want)
		}
	}
}

// fireAt fires once a given stamp has been observed.
type fireAt struct {
	at    uint64
	fired bool
}

func (f *fireAt) Name() string { return "fireat" }

func (f *fireAt) Observe(es []tracer.Entry) string {
	for i := range es {
		if es[i].Stamp >= f.at && !f.fired {
			f.fired = true
			return fmt.Sprintf("stamp %d reached", f.at)
		}
	}
	return ""
}

// TestSupervisorConfigValidation pins the Source/Cursor exclusivity.
func TestSupervisorConfigValidation(t *testing.T) {
	if _, err := NewSupervisor(SupervisorConfig{}); err == nil {
		t.Fatal("no source accepted")
	}
	cur := &arenaCursor{next: 1}
	if _, err := NewSupervisor(SupervisorConfig{
		Source: Fallible(noPoller{}),
		Cursor: cur,
	}); err == nil {
		t.Fatal("both Source and Cursor accepted")
	}
	if _, err := NewSupervisor(SupervisorConfig{Cursor: cur}); err != nil {
		t.Fatalf("cursor-only config rejected: %v", err)
	}
}
