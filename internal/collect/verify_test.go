package collect

import (
	"testing"

	"btrace/internal/tracer"
)

// TestVerifierUnorderedSource: in unordered mode (a multiplexed source
// like the /ingest queue) cross-thread stamp inversions are legal and
// must pass, while per-thread regressions and structural violations are
// still quarantined.
func TestVerifierUnorderedSource(t *testing.T) {
	e := func(stamp uint64, tid uint32) tracer.Entry {
		return tracer.Entry{Stamp: stamp, TS: stamp, TID: tid, Category: 1}
	}

	ordered := NewVerifier()
	clean, quarantined, _ := ordered.Check([]tracer.Entry{e(65, 2), e(66, 2), e(1, 1), e(2, 1)})
	if len(clean) != 2 || len(quarantined) != 2 {
		t.Fatalf("ordered verifier on interleaved batches: clean %d quarantined %d, want 2/2",
			len(clean), len(quarantined))
	}

	un := NewVerifier()
	un.unordered = true
	clean, quarantined, _ = un.Check([]tracer.Entry{e(65, 2), e(66, 2), e(1, 1), e(2, 1)})
	if len(clean) != 4 || len(quarantined) != 0 {
		t.Fatalf("unordered verifier on interleaved batches: clean %d quarantined %d, want 4/0",
			len(clean), len(quarantined))
	}

	// Per-thread order and structural soundness still hold: a stamp
	// reuse within thread 2, a zero stamp, and an oversized payload are
	// quarantined even in unordered mode.
	bad := []tracer.Entry{
		e(66, 2),
		{TS: 1, TID: 1, Category: 1},
		{Stamp: 99, TS: 1, TID: 3, Category: 1, Payload: make([]byte, tracer.MaxPayload+1)},
		e(3, 1),
	}
	clean, quarantined, violations := un.Check(bad)
	if len(clean) != 1 || clean[0].Stamp != 3 {
		t.Fatalf("unordered verifier kept %d clean (want just stamp 3): %+v", len(clean), clean)
	}
	if len(quarantined) != 3 || len(violations) != 3 {
		t.Fatalf("unordered verifier quarantined %d with %d violations, want 3/3",
			len(quarantined), len(violations))
	}
}
