// Readout verification: DESIGN.md's quiescence invariants, promoted to
// runtime checks over the live polled stream. The tracer core panics on
// protocol violations it can prove are its own accounting bugs; the
// collector, by contrast, consumes readouts that may be torn by faulty
// transports, so it quarantines inconsistent entries (reporting them in
// the next Dump) rather than panicking.
package collect

import (
	"fmt"

	"btrace/internal/tracer"
)

// Verifier checks the stream invariants of a polled readout:
//
//   - the stream is totally ordered by logic stamp and stamps are unique
//     (DESIGN.md invariant 5, first half);
//   - stamps within one producer thread are strictly increasing
//     (invariant 5, second half);
//   - every entry is structurally sound (non-zero stamp, payload within
//     the wire format's bounds — a torn batch decodes as garbage here).
//
// Entries failing a check are quarantined, not dropped silently, and the
// verifier's cursors do not advance past them, so one corrupt entry
// cannot poison the stream that follows it.
//
// In unordered mode the first invariant is waived: a multiplexed source
// (independent clients POSTing to /ingest) has no cross-thread order to
// verify, only the per-thread and structural invariants.
//
// A Verifier is driven by a single collector goroutine.
type Verifier struct {
	lastStamp uint64
	perThread map[uint32]uint64
	// unordered drops the cross-thread total-order checks: the stream is
	// a multiplex of independent producers (SupervisorConfig
	// .SourceUnordered), where batches interleave arbitrarily and only
	// per-thread order is an invariant.
	unordered bool

	checked     uint64
	quarantined uint64
}

// NewVerifier creates a Verifier with empty cursors.
func NewVerifier() *Verifier {
	return &Verifier{perThread: map[uint32]uint64{}}
}

// Check splits a polled batch into clean entries and quarantined ones,
// with one violation description per quarantined entry.
func (v *Verifier) Check(es []tracer.Entry) (clean, quarantined []tracer.Entry, violations []string) {
	clean = es[:0:0]
	for i := range es {
		e := es[i]
		if reason := v.check(&e); reason != "" {
			quarantined = append(quarantined, e)
			violations = append(violations, reason)
			v.quarantined++
			continue
		}
		v.lastStamp = e.Stamp
		v.perThread[e.TID] = e.Stamp
		clean = append(clean, e)
		v.checked++
	}
	return clean, quarantined, violations
}

// check returns a non-empty violation description if e is inconsistent
// with the stream so far.
func (v *Verifier) check(e *tracer.Entry) string {
	if e.Stamp == 0 {
		return "zero logic stamp"
	}
	if len(e.Payload) > tracer.MaxPayload {
		return fmt.Sprintf("stamp %d: payload %d exceeds wire maximum %d", e.Stamp, len(e.Payload), tracer.MaxPayload)
	}
	if !v.unordered {
		if e.Stamp == v.lastStamp {
			return fmt.Sprintf("stamp %d: duplicate of previous entry", e.Stamp)
		}
		if e.Stamp < v.lastStamp {
			return fmt.Sprintf("stamp %d: out of order after %d", e.Stamp, v.lastStamp)
		}
	}
	if last, ok := v.perThread[e.TID]; ok && e.Stamp <= last {
		return fmt.Sprintf("stamp %d: thread %d not strictly increasing after %d", e.Stamp, e.TID, last)
	}
	return ""
}

// Stats returns (entries accepted, entries quarantined) since creation.
func (v *Verifier) Stats() (checked, quarantined uint64) {
	return v.checked, v.quarantined
}
