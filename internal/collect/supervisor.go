// Supervisor: the self-healing collector pipeline. The plain Collector
// assumes a healthy source and sink; production deployments (§2.1, §6 of
// the paper) cannot — polls fail or return torn batches, dump sinks stall
// or die, and the daemon itself must degrade gracefully rather than crash
// or silently drop data. The Supervisor wraps the Collector with:
//
//   - retry with exponential backoff + deterministic jitter and a bounded
//     retry budget for both the source and the sink;
//   - a self-watchdog that declares the source wedged after the retry
//     budget is exhausted (or after a configurable run of empty polls);
//   - readout verification (Verifier) that quarantines inconsistent
//     entries into the next Dump instead of panicking;
//   - graceful degradation: sustained loss pressure grows the traced
//     buffer via Resize and shrinks it back when pressure subsides, and a
//     failed sink spills dumps to a bounded in-memory ring instead of
//     dropping them.
package collect

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"btrace/internal/overload"
	"btrace/internal/tracer"
)

// ErrPermanent marks a sink error as unrecoverable: the Supervisor spills
// the dump immediately instead of burning its retry budget. Sinks signal
// it by returning an error wrapping ErrPermanent.
var ErrPermanent = errors.New("collect: permanent sink failure")

// DumpStore is the durable sink mode's persistence surface (satisfied by
// store.Store). When the in-memory spill ring overflows, evicted dumps
// are appended to the store instead of being dropped.
type DumpStore interface {
	// AppendEntries durably stages a dump's events.
	AppendEntries(es []tracer.Entry) error
}

// asyncAppender is the non-blocking staging surface a DumpStore may
// additionally offer (store.Store does). The spill path prefers it:
// eviction then costs one arena copy instead of a wait for the write
// goroutine, so a slow disk cannot stall the poll loop. Errors the
// async path defers surface on the store's own Sync/Close.
type asyncAppender interface {
	AppendEntriesAsync(es []tracer.Entry) error
}

// writeHealth is the sticky-error surface a DumpStore may offer
// (store.Store does). The spill path consults it around asynchronous
// staging: staging into a write path that has already failed must count
// the dump dropped, not persisted — the bytes will never reach disk.
type writeHealth interface {
	WriteErr() error
}

// FalliblePoller is an incremental trace source whose polls can fail —
// the realistic form of Poller a supervised pipeline consumes.
type FalliblePoller interface {
	// Poll returns events newer than the previous successful call, the
	// count of events lost to overwrite, and an error if the poll failed
	// (in which case no events are consumed from the source).
	Poll() ([]tracer.Entry, uint64, error)
}

// Fallible adapts an infallible Poller to FalliblePoller.
func Fallible(p Poller) FalliblePoller { return infallible{p} }

type infallible struct{ p Poller }

func (a infallible) Poll() ([]tracer.Entry, uint64, error) {
	es, missed := a.p.Poll()
	return es, missed, nil
}

// Resizer is the traced buffer's resize surface (satisfied by
// core.Buffer): Ratio reports the current data-blocks-per-metadata-block
// ratio and Resize changes it.
type Resizer interface {
	Ratio() int
	Resize(newRatio int) error
}

// SupervisorConfig configures a Supervisor. Zero values select the
// documented defaults.
type SupervisorConfig struct {
	// Source is the fallible trace source. Exactly one of Source and
	// Cursor must be set.
	Source FalliblePoller
	// Cursor is the streaming trace source: each step consumes at most
	// BatchSize events through the cursor's reusable arena, so the
	// pipeline's per-step memory stays bounded no matter how far the
	// source runs ahead. Batches are borrowed per the tracer.Cursor
	// contract; the supervisor deep-copies only what it retains (window
	// and quarantine).
	Cursor tracer.Cursor
	// BatchSize bounds the events consumed per step in Cursor mode
	// (default 512).
	BatchSize int
	// Triggers fire dumps, as in Config. A LossDetector among them also
	// receives per-poll missed counts and sets the loss tolerance the
	// adaptive resize policy uses.
	Triggers []Trigger
	// MaxWindowEvents bounds the rolling context window (default 65536).
	MaxWindowEvents int

	// Sink receives serialized dumps. Nil means dumps are only returned
	// from Step (and never spill).
	Sink io.Writer

	// PollRetryBudget is the number of consecutive poll failures after
	// which the source is declared wedged (default 8). Polling continues
	// at the capped backoff so recovery is still detected.
	PollRetryBudget int
	// WedgeEmptyPolls, when positive, additionally declares the source
	// wedged after that many consecutive successful polls returning no
	// events and no loss — a frozen tracer looks exactly like that.
	WedgeEmptyPolls int
	// SinkRetryBudget is the number of write attempts per dump before it
	// is spilled to memory (default 8).
	SinkRetryBudget int
	// BackoffBase and BackoffMax bound the exponential backoff, measured
	// in Step calls (defaults 1 and 64). Jitter of up to one base step is
	// added, drawn deterministically from Seed.
	BackoffBase int
	BackoffMax  int
	// Seed makes the backoff jitter deterministic.
	Seed int64

	// Resizer, when set, enables adaptive buffer sizing.
	Resizer Resizer
	// MaxRatio is the grow ceiling (default: the resizer's ratio at
	// construction, i.e. no growth).
	MaxRatio int
	// GrowAfter is the number of consecutive polls with loss above the
	// LossDetector tolerance before the buffer grows (default 2).
	GrowAfter int
	// ShrinkAfter is the number of consecutive loss-free polls before the
	// buffer shrinks back toward its original ratio (default 64).
	ShrinkAfter int

	// SpillCapacity bounds the in-memory spill ring (default 16 dumps);
	// beyond it the oldest spilled dump is dropped and counted — unless
	// Store is set, in which case it is persisted instead.
	SpillCapacity int

	// Store, when set, enables the durable sink mode: dumps evicted from
	// the spill ring are appended to the store (counted as
	// SpillPersisted) rather than dropped (SpillDropped). A store append
	// failure falls back to dropping, so a broken disk cannot wedge the
	// pipeline.
	Store DumpStore

	// StoreSink makes the Store the primary dump destination: triggered
	// dumps are delivered to it synchronously from stepSink, with the
	// same retry budget, backoff and spill fallback an io.Writer sink
	// gets. Requires Store; mutually exclusive with Sink.
	StoreSink bool

	// Overload, when set, is the adaptive overload gate applied to every
	// verified batch before ingest. The supervisor feeds it the pressure
	// signals the pipeline already tracks — spill ring fill, per-poll
	// loss rate, and the store's write-path latencies — once per poll.
	Overload *overload.Gate

	// SourceUnordered marks the source as a multiplex of independent
	// producers (the HTTP /ingest queue: concurrent clients' batches
	// interleave arbitrarily). The verifier then checks only per-thread
	// stamp order and structural soundness — the global total-order
	// invariant belongs to single tracer readout streams and would
	// quarantine legitimate interleaved traffic here, diverting it
	// around the overload gate and the live fan-out.
	SourceUnordered bool
}

// SupervisorStats counts everything the pipeline absorbed.
type SupervisorStats struct {
	Polls            uint64 // successful polls
	PollErrors       uint64 // failed polls
	PollBackoffSteps uint64 // steps skipped waiting out poll backoff
	EventsMissed     uint64 // events lost to overwrite between polls

	Dumps          uint64 // dumps produced by triggers
	DumpsWritten   uint64 // dumps fully delivered to the sink
	SinkErrors     uint64 // failed sink writes
	SinkBackoff    uint64 // steps skipped waiting out sink backoff
	Spilled        uint64 // dumps diverted to the spill ring
	SpillDropped   uint64 // spilled dumps evicted by the ring bound and lost
	SpillPersisted uint64 // evicted dumps persisted to the durable store
	// SpillDroppedEvents counts the events (quarantined included) inside
	// dropped dumps, making loss accounting event-exact: every event the
	// pipeline accepted is eventually delivered, persisted, or counted
	// here.
	SpillDroppedEvents uint64

	Grows   uint64 // adaptive Resize grow operations
	Shrinks uint64 // adaptive Resize shrink operations

	Quarantined     uint64 // entries rejected by the verifier
	WedgeDetections uint64 // false->true transitions of the wedge verdict
}

// HealthReport is the supervisor's self-diagnosis.
type HealthReport struct {
	// SourceWedged is the self-watchdog verdict: the poll retry budget is
	// exhausted or the source has been silent past WedgeEmptyPolls.
	SourceWedged bool
	// SinkFailed reports a permanent sink failure was observed.
	SinkFailed bool
	// PollBackoff and SinkBackoff are the steps remaining before the next
	// poll / sink attempt.
	PollBackoff int
	SinkBackoff int
	// PendingDumps is the number of dumps awaiting sink delivery.
	PendingDumps int
	// SpilledDumps is the number of dumps held in the spill ring.
	SpilledDumps int
}

// pendingDump is a dump awaiting sink delivery, its wire encoding cached
// so retries resend identical bytes.
type pendingDump struct {
	dump     *Dump
	wire     []byte
	attempts int
}

// Supervisor is the supervised, self-healing collector pipeline. It is
// driven by a single goroutine calling Step.
type Supervisor struct {
	cfg SupervisorConfig
	col *Collector
	ver *Verifier
	rng *rand.Rand
	// batch is the reusable read buffer of Cursor mode.
	batch []tracer.Entry

	// Quarantine accumulated since the last dump, attached to the next one.
	quarantined []tracer.Entry
	violations  []string

	consecPollErrs int
	consecEmpty    int
	pollBackoff    int
	sourceWedged   bool

	pending     []*pendingDump
	sinkBackoff int
	sinkFailed  bool
	spill       []*Dump

	baseRatio    int
	lossTol      uint64
	lossyStreak  int
	cleanStreak  int
	resizeErrors []error

	stats SupervisorStats
	// published is the stats snapshot last folded into obs; the delta is
	// published once per Step/Flush (see publishObs).
	published SupervisorStats
	obs       *supObs
}

// NewSupervisor creates a supervised pipeline.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Source == nil && cfg.Cursor == nil {
		return nil, fmt.Errorf("collect: nil source")
	}
	if cfg.Source != nil && cfg.Cursor != nil {
		return nil, fmt.Errorf("collect: both Source and Cursor set")
	}
	if cfg.StoreSink {
		if cfg.Store == nil {
			return nil, fmt.Errorf("collect: StoreSink requires Store")
		}
		if cfg.Sink != nil {
			return nil, fmt.Errorf("collect: StoreSink is mutually exclusive with Sink")
		}
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 512
	}
	if cfg.PollRetryBudget == 0 {
		cfg.PollRetryBudget = 8
	}
	if cfg.SinkRetryBudget == 0 {
		cfg.SinkRetryBudget = 8
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 1
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 64
	}
	if cfg.GrowAfter == 0 {
		cfg.GrowAfter = 2
	}
	if cfg.ShrinkAfter == 0 {
		cfg.ShrinkAfter = 64
	}
	if cfg.SpillCapacity == 0 {
		cfg.SpillCapacity = 16
	}
	col, err := New(Config{
		Source:          noPoller{},
		Triggers:        cfg.Triggers,
		MaxWindowEvents: cfg.MaxWindowEvents,
	})
	if err != nil {
		return nil, err
	}
	s := &Supervisor{
		cfg: cfg,
		col: col,
		ver: NewVerifier(),
		rng: rand.New(rand.NewSource(cfg.Seed)),
		obs: newSupObs(),
	}
	s.registerObs()
	s.ver.unordered = cfg.SourceUnordered
	if cfg.Cursor != nil {
		s.batch = make([]tracer.Entry, cfg.BatchSize)
	}
	if col.loss != nil {
		s.lossTol = col.loss.Tolerance
	}
	if cfg.Resizer != nil {
		s.baseRatio = cfg.Resizer.Ratio()
		if s.cfg.MaxRatio == 0 {
			s.cfg.MaxRatio = s.baseRatio
		}
	}
	return s, nil
}

// noPoller backs the inner Collector, which the Supervisor only drives
// through Ingest.
type noPoller struct{}

func (noPoller) Poll() ([]tracer.Entry, uint64) { return nil, 0 }

// backoffAfter computes the backoff (in steps) after the n-th consecutive
// failure: base*2^(n-1) capped at max, plus up to one base step of
// deterministic jitter.
func (s *Supervisor) backoffAfter(n int) int {
	d := s.cfg.BackoffBase
	for i := 1; i < n && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	return d + s.rng.Intn(s.cfg.BackoffBase+1)
}

// Step runs one supervised iteration: wait out or attempt a poll, verify
// and ingest its events, apply the adaptive resize policy, and drain
// pending dumps to the sink. It returns the dump produced by this step's
// ingest, if any (delivery to the sink may complete on a later step).
func (s *Supervisor) Step() *Dump {
	dump := s.stepPoll()
	s.stepSink()
	s.publishObs()
	return dump
}

// stepPoll performs the poll half of a step.
func (s *Supervisor) stepPoll() *Dump {
	if s.pollBackoff > 0 {
		s.pollBackoff--
		s.stats.PollBackoffSteps++
		return nil
	}
	var (
		es     []tracer.Entry
		missed uint64
		err    error
		// shared marks es as borrowed from the cursor's arena (valid only
		// until the next Next call): retained copies must be deep.
		shared bool
	)
	if s.cfg.Cursor != nil {
		var n int
		n, missed, err = s.cfg.Cursor.Next(s.batch)
		es, shared = s.batch[:n], true
	} else {
		es, missed, err = s.cfg.Source.Poll()
	}
	if err != nil {
		s.stats.PollErrors++
		s.consecPollErrs++
		s.pollBackoff = s.backoffAfter(s.consecPollErrs)
		if s.consecPollErrs >= s.cfg.PollRetryBudget && !s.sourceWedged {
			s.sourceWedged = true // self-watchdog: source declared wedged
			s.stats.WedgeDetections++
		}
		return nil
	}
	s.consecPollErrs = 0
	s.stats.Polls++
	s.stats.EventsMissed += missed

	// Empty-poll half of the self-watchdog.
	if len(es) == 0 && missed == 0 {
		s.consecEmpty++
		if s.cfg.WedgeEmptyPolls > 0 && s.consecEmpty >= s.cfg.WedgeEmptyPolls {
			if !s.sourceWedged {
				s.stats.WedgeDetections++
			}
			s.sourceWedged = true
		}
	} else {
		s.consecEmpty = 0
		s.sourceWedged = false
	}

	clean, quarantined, violations := s.ver.Check(es)
	if shared {
		s.quarantined = tracer.CloneEntries(s.quarantined, quarantined)
	} else {
		s.quarantined = append(s.quarantined, quarantined...)
	}
	s.violations = append(s.violations, violations...)
	s.stats.Quarantined += uint64(len(quarantined))

	// Overload control sits between verification and ingest: quarantined
	// entries already left the batch (they are evidence, never shed), and
	// whatever the gate admits is what the window and triggers see.
	if g := s.cfg.Overload; g != nil {
		g.Evaluate(s.pressure(len(clean), missed))
		clean = g.Filter(clean)
	}

	s.adaptCapacity(missed)

	var dump *Dump
	if shared {
		dump = s.col.IngestShared(clean, missed)
	} else {
		dump = s.col.Ingest(clean, missed)
	}
	if dump == nil {
		return nil
	}
	dump.Quarantined = s.quarantined
	dump.Violations = s.violations
	s.quarantined = nil
	s.violations = nil
	s.stats.Dumps++
	if s.cfg.Sink != nil || s.cfg.StoreSink {
		s.pending = append(s.pending, &pendingDump{dump: dump})
	}
	return dump
}

// pressure assembles the overload controller's input vector from the
// signals the pipeline already tracks.
func (s *Supervisor) pressure(polled int, missed uint64) overload.Pressure {
	p := overload.Pressure{
		SpillFill: float64(len(s.spill)) / float64(s.cfg.SpillCapacity),
	}
	if total := missed + uint64(polled); total > 0 {
		p.LossRate = float64(missed) / float64(total)
	}
	if ps, ok := s.cfg.Store.(overload.PressureSource); ok {
		p.Store = ps.Pressure()
	}
	return p
}

// adaptCapacity implements graceful degradation under loss pressure:
// missed events above the LossDetector tolerance on GrowAfter consecutive
// polls double the traced buffer's ratio (up to MaxRatio); ShrinkAfter
// consecutive loss-free polls halve it back (down to the original ratio).
func (s *Supervisor) adaptCapacity(missed uint64) {
	if s.cfg.Resizer == nil {
		return
	}
	if missed > s.lossTol {
		s.lossyStreak++
		s.cleanStreak = 0
	} else {
		s.cleanStreak++
		s.lossyStreak = 0
	}
	ratio := s.cfg.Resizer.Ratio()
	switch {
	case s.lossyStreak >= s.cfg.GrowAfter && ratio < s.cfg.MaxRatio:
		next := ratio * 2
		if next > s.cfg.MaxRatio {
			next = s.cfg.MaxRatio
		}
		if err := s.cfg.Resizer.Resize(next); err != nil {
			s.resizeErrors = append(s.resizeErrors, err)
			return
		}
		s.stats.Grows++
		s.lossyStreak = 0
	case s.cleanStreak >= s.cfg.ShrinkAfter && ratio > s.baseRatio:
		next := ratio / 2
		if next < s.baseRatio {
			next = s.baseRatio
		}
		if err := s.cfg.Resizer.Resize(next); err != nil {
			s.resizeErrors = append(s.resizeErrors, err)
			return
		}
		s.stats.Shrinks++
		s.cleanStreak = 0
	}
}

// stepSink drains pending dumps to the sink, honoring backoff, the retry
// budget and permanent-failure spilling.
func (s *Supervisor) stepSink() {
	if (s.cfg.Sink == nil && !s.cfg.StoreSink) || len(s.pending) == 0 {
		return
	}
	if s.sinkBackoff > 0 {
		s.sinkBackoff--
		s.stats.SinkBackoff++
		return
	}
	if s.cfg.StoreSink {
		s.stepStoreSink()
		return
	}
	for len(s.pending) > 0 {
		p := s.pending[0]
		if p.wire == nil {
			var buf bytes.Buffer
			if _, err := p.dump.WriteTo(&buf); err != nil {
				// Unencodable dump: spill it rather than wedging the queue.
				s.spillDump(p.dump)
				s.pending = s.pending[1:]
				continue
			}
			p.wire = buf.Bytes()
		}
		p.attempts++
		if _, err := s.cfg.Sink.Write(p.wire); err != nil {
			s.stats.SinkErrors++
			if errors.Is(err, ErrPermanent) {
				// Permanent failure: spill everything pending; keep the
				// pipeline alive on the in-memory ring.
				s.sinkFailed = true
				for _, q := range s.pending {
					s.spillDump(q.dump)
				}
				s.pending = s.pending[:0]
				return
			}
			if p.attempts >= s.cfg.SinkRetryBudget {
				s.spillDump(p.dump)
				s.pending = s.pending[1:]
			}
			s.sinkBackoff = s.backoffAfter(p.attempts)
			return
		}
		s.sinkFailed = false
		s.stats.DumpsWritten++
		s.pending = s.pending[1:]
	}
}

// stepStoreSink delivers pending dumps to the durable store — the
// StoreSink analogue of the io.Writer drain loop above. Delivery is the
// synchronous AppendEntries (delivered means applied); a sticky
// write-path failure is the store's ErrPermanent: everything pending
// spills at once rather than burning the retry budget against a disk
// that is gone.
func (s *Supervisor) stepStoreSink() {
	wh, _ := s.cfg.Store.(writeHealth)
	for len(s.pending) > 0 {
		p := s.pending[0]
		p.attempts++
		if err := s.cfg.Store.AppendEntries(dumpEntries(p.dump)); err != nil {
			s.stats.SinkErrors++
			if wh != nil && wh.WriteErr() != nil {
				s.sinkFailed = true
				for _, q := range s.pending {
					s.spillDump(q.dump)
				}
				s.pending = s.pending[:0]
				return
			}
			if p.attempts >= s.cfg.SinkRetryBudget {
				s.spillDump(p.dump)
				s.pending = s.pending[1:]
			}
			s.sinkBackoff = s.backoffAfter(p.attempts)
			return
		}
		s.sinkFailed = false
		s.stats.DumpsWritten++
		s.pending = s.pending[1:]
	}
}

// spillDump appends a dump to the bounded in-memory spill ring, evicting
// the oldest when full. With a durable store configured, evicted dumps
// are persisted instead of dropped. Each evicted dump is counted exactly
// once — persisted or dropped, never both — and drops are additionally
// counted event-exact in SpillDroppedEvents.
func (s *Supervisor) spillDump(d *Dump) {
	s.spill = append(s.spill, d)
	s.stats.Spilled++
	if over := len(s.spill) - s.cfg.SpillCapacity; over > 0 {
		for _, old := range s.spill[:over] {
			if s.cfg.Store != nil && s.persistDump(old) {
				s.stats.SpillPersisted++
			} else {
				s.stats.SpillDropped++
				s.stats.SpillDroppedEvents += uint64(len(old.Events) + len(old.Quarantined))
			}
		}
		s.spill = append(s.spill[:0], s.spill[over:]...)
	}
}

// dumpEntries merges a dump's clean and quarantined entries (nothing the
// verifier flagged is silently lost) into the slice handed to the store
// — one append per dump, so the persisted/dropped split always reflects
// a single outcome.
func dumpEntries(d *Dump) []tracer.Entry {
	if len(d.Quarantined) == 0 {
		return d.Events
	}
	es := make([]tracer.Entry, 0, len(d.Events)+len(d.Quarantined))
	return append(append(es, d.Events...), d.Quarantined...)
}

// persistDump writes a dump's events to the durable store, reporting
// whether the dump may be counted persisted. The async staging path
// returns before the write applies, so a nil error from it is not
// enough: if the write path was already dead before staging — or died
// while we staged — the bytes will never reach disk, and counting the
// dump persisted would double-book it against the store's own failure
// accounting. Checking WriteErr on both sides of the stage closes that
// window: a dump is persisted, or it is dropped, never both.
func (s *Supervisor) persistDump(d *Dump) bool {
	es := dumpEntries(d)
	wh, _ := s.cfg.Store.(writeHealth)
	if aa, ok := s.cfg.Store.(asyncAppender); ok {
		if wh != nil && wh.WriteErr() != nil {
			return false
		}
		if aa.AppendEntriesAsync(es) != nil {
			return false
		}
		return wh == nil || wh.WriteErr() == nil
	}
	return s.cfg.Store.AppendEntries(es) == nil
}

// Flush synchronously attempts to deliver every pending and spilled dump
// to the sink, ignoring backoff — the shutdown / sink-healed path. It
// returns the first delivery error (spilled dumps stay in the ring on
// failure).
func (s *Supervisor) Flush() error {
	if s.cfg.StoreSink {
		return s.flushToStore()
	}
	if s.cfg.Sink == nil {
		return nil
	}
	defer s.publishObs()
	for len(s.pending) > 0 {
		p := s.pending[0]
		if p.wire == nil {
			var buf bytes.Buffer
			if _, err := p.dump.WriteTo(&buf); err != nil {
				return err
			}
			p.wire = buf.Bytes()
		}
		if _, err := s.cfg.Sink.Write(p.wire); err != nil {
			s.stats.SinkErrors++
			return err
		}
		s.stats.DumpsWritten++
		s.pending = s.pending[1:]
	}
	for len(s.spill) > 0 {
		var buf bytes.Buffer
		if _, err := s.spill[0].WriteTo(&buf); err != nil {
			return err
		}
		if _, err := s.cfg.Sink.Write(buf.Bytes()); err != nil {
			s.stats.SinkErrors++
			return err
		}
		s.stats.DumpsWritten++
		s.spill = s.spill[1:]
	}
	s.sinkFailed = false
	return nil
}

// flushToStore is Flush for StoreSink mode: deliver every pending and
// spilled dump to the store synchronously, ignoring backoff. Undelivered
// dumps stay queued on failure.
func (s *Supervisor) flushToStore() error {
	defer s.publishObs()
	for len(s.pending) > 0 {
		if err := s.cfg.Store.AppendEntries(dumpEntries(s.pending[0].dump)); err != nil {
			s.stats.SinkErrors++
			return err
		}
		s.stats.DumpsWritten++
		s.pending = s.pending[1:]
	}
	for len(s.spill) > 0 {
		if err := s.cfg.Store.AppendEntries(dumpEntries(s.spill[0])); err != nil {
			s.stats.SinkErrors++
			return err
		}
		s.stats.DumpsWritten++
		s.spill = s.spill[1:]
	}
	s.sinkFailed = false
	return nil
}

// Spill returns the dumps currently held by the in-memory spill ring,
// oldest first, without draining it.
func (s *Supervisor) Spill() []*Dump { return append([]*Dump(nil), s.spill...) }

// Health returns the supervisor's self-diagnosis.
func (s *Supervisor) Health() HealthReport {
	return HealthReport{
		SourceWedged: s.sourceWedged,
		SinkFailed:   s.sinkFailed,
		PollBackoff:  s.pollBackoff,
		SinkBackoff:  s.sinkBackoff,
		PendingDumps: len(s.pending),
		SpilledDumps: len(s.spill),
	}
}

// Stats returns a snapshot of the pipeline counters.
func (s *Supervisor) Stats() SupervisorStats { return s.stats }

// ResizeErrors returns errors from adaptive Resize attempts (surfaced
// rather than retried blindly; the policy re-evaluates on later polls).
func (s *Supervisor) ResizeErrors() []error { return append([]error(nil), s.resizeErrors...) }
