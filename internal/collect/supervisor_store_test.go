package collect

import (
	"errors"
	"testing"

	"btrace/internal/store"
	"btrace/internal/tracer"
)

// failingStore rejects every append, exercising the fallback-to-drop
// path of the durable sink mode.
type failingStore struct{ calls int }

func (f *failingStore) AppendEntries([]tracer.Entry) error {
	f.calls++
	return errors.New("disk gone")
}

// TestSupervisorSpillPersistsToStore: with a durable store configured,
// spill-ring overflow persists the evicted dumps instead of dropping
// them, and the persisted events are queryable from the store.
func TestSupervisorSpillPersistsToStore(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sink := &flakySink{failFirst: -1, permanent: true}
	s, err := NewSupervisor(SupervisorConfig{
		Source:        lossyScript(50, 50, 50, 50),
		Triggers:      []Trigger{&LossDetector{Tolerance: 1}},
		Sink:          sink,
		SpillCapacity: 2,
		Store:         st,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && s.Stats().Spilled < 4; i++ {
		s.Step()
	}
	stats := s.Stats()
	if stats.Spilled != 4 || stats.SpillPersisted != 2 || stats.SpillDropped != 0 {
		t.Fatalf("durable spill accounting: %+v", stats)
	}
	if got := len(s.Spill()); got != 2 {
		t.Fatalf("ring holds %d dumps, want 2", got)
	}
	// The two evicted dumps' events are durably readable. The spill
	// path stages asynchronously, so force the staged bytes down first.
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	cur := st.NewCursor()
	defer cur.Close()
	es, err := tracer.Drain(cur, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 {
		t.Fatalf("store holds %d events, want 2 (one per evicted single-event dump)", len(es))
	}
	for _, e := range es {
		if e.Stamp == 0 {
			t.Fatalf("persisted event has zero stamp: %+v", e)
		}
	}
}

// TestSupervisorSpillStoreFailureFallsBack: a failing store must not
// wedge the pipeline; evictions degrade to drops.
func TestSupervisorSpillStoreFailureFallsBack(t *testing.T) {
	fs := &failingStore{}
	sink := &flakySink{failFirst: -1, permanent: true}
	s, err := NewSupervisor(SupervisorConfig{
		Source:        lossyScript(50, 50, 50, 50),
		Triggers:      []Trigger{&LossDetector{Tolerance: 1}},
		Sink:          sink,
		SpillCapacity: 2,
		Store:         fs,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && s.Stats().Spilled < 4; i++ {
		s.Step()
	}
	stats := s.Stats()
	if stats.SpillPersisted != 0 || stats.SpillDropped != 2 {
		t.Fatalf("fallback accounting: %+v", stats)
	}
	if fs.calls == 0 {
		t.Fatal("store was never attempted")
	}
}
