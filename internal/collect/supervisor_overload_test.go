package collect

import (
	"errors"
	"testing"

	"btrace/internal/overload"
	"btrace/internal/store"
	"btrace/internal/tracer"
)

// TestSupervisorOverloadGateFilters: sustained loss pressure measured by
// the supervisor itself escalates the gate through its tiers, the gate's
// verdict decides what the collector ingests, and the accounting
// identity holds across the whole run.
func TestSupervisorOverloadGateFilters(t *testing.T) {
	g := overload.NewGate(overload.Config{
		MinSampleRate: 1, // isolate the tier machine from sampling
		EngageAfter:   1,
		CooldownEvals: 100,
	})
	// Each poll returns 1 event and 50 missed: loss rate 50/51 ≈ 0.98,
	// far above the default engage threshold, so every poll escalates one
	// tier. Polls 1 and 2 run at TierPayload/TierCategory (the level-0
	// events are neither low-priority nor carry payload, so they pass);
	// polls 3..6 run at TierStream and shed.
	s, err := NewSupervisor(SupervisorConfig{
		Source:   lossyScript(50, 50, 50, 50, 50, 50),
		Triggers: []Trigger{&LossDetector{Tolerance: 1}},
		Overload: g,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var delivered int
	for i := 0; i < 6; i++ {
		if d := s.Step(); d != nil {
			delivered += len(d.Events)
		}
	}
	if g.Tier() != overload.TierStream {
		t.Fatalf("tier after sustained loss: %v", g.Tier())
	}
	gs := g.Stats()
	if gs.Seen != 6 || gs.Admitted != 2 || gs.ShedStream != 4 {
		t.Fatalf("gate accounting: %+v", gs)
	}
	if sum := gs.Admitted + gs.SampledOut + gs.ThrottledCategory + gs.ThrottledStream +
		gs.ShedCategory + gs.ShedStream; sum != gs.Seen {
		t.Fatalf("identity broken: %+v", gs)
	}
	if delivered != 2 {
		t.Fatalf("dumps carried %d events, want the 2 admitted", delivered)
	}
}

// stagingDeadStore models the asynchronous staging hazard: the async
// append stages successfully (nil error) but the write path dies before
// the bytes reach disk. Before the writeHealth check, the supervisor
// counted such dumps persisted.
type stagingDeadStore struct {
	err        error // sticky write-path error, visible via WriteErr
	dieOnStage bool  // make the write path die during the async stage
	asyncCalls int
	syncCalls  int
}

func (f *stagingDeadStore) AppendEntries([]tracer.Entry) error {
	f.syncCalls++
	if f.err != nil {
		return f.err
	}
	return nil
}

func (f *stagingDeadStore) AppendEntriesAsync([]tracer.Entry) error {
	f.asyncCalls++
	if f.err != nil {
		return f.err
	}
	if f.dieOnStage {
		f.err = errors.New("write path died mid-stage")
	}
	return nil // staged — but the bytes will never apply
}

func (f *stagingDeadStore) WriteErr() error { return f.err }

// TestSupervisorSpillAsyncDeadStoreCountsDropOnce is the accounting
// regression test: a dump staged into a dead (or dying) write path must
// be counted SpillDropped exactly once — never SpillPersisted, and never
// both.
func TestSupervisorSpillAsyncDeadStoreCountsDropOnce(t *testing.T) {
	run := func(t *testing.T, fs *stagingDeadStore) SupervisorStats {
		t.Helper()
		s, err := NewSupervisor(SupervisorConfig{
			Source:        lossyScript(50, 50, 50, 50),
			Triggers:      []Trigger{&LossDetector{Tolerance: 1}},
			Sink:          &flakySink{failFirst: -1, permanent: true},
			SpillCapacity: 2,
			Store:         fs,
			Seed:          3,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200 && s.Stats().Spilled < 4; i++ {
			s.Step()
		}
		return s.Stats()
	}

	t.Run("dead-before-stage", func(t *testing.T) {
		fs := &stagingDeadStore{err: errors.New("disk gone")}
		stats := run(t, fs)
		if stats.SpillPersisted != 0 || stats.SpillDropped != 2 || stats.SpillDroppedEvents != 2 {
			t.Fatalf("accounting: %+v", stats)
		}
		if fs.asyncCalls != 0 {
			t.Fatalf("staged %d dumps into a known-dead write path", fs.asyncCalls)
		}
	})

	t.Run("dies-during-stage", func(t *testing.T) {
		fs := &stagingDeadStore{dieOnStage: true}
		stats := run(t, fs)
		// The first eviction stages and the path dies under it; the
		// post-stage health check must count it dropped, and the second
		// eviction sees the dead path up front.
		if stats.SpillPersisted != 0 || stats.SpillDropped != 2 || stats.SpillDroppedEvents != 2 {
			t.Fatalf("accounting: %+v", stats)
		}
		if fs.asyncCalls != 1 {
			t.Fatalf("async stages: %d, want 1", fs.asyncCalls)
		}
	})

	t.Run("healthy-path-still-persists", func(t *testing.T) {
		fs := &stagingDeadStore{}
		stats := run(t, fs)
		if stats.SpillPersisted != 2 || stats.SpillDropped != 0 || stats.SpillDroppedEvents != 0 {
			t.Fatalf("accounting: %+v", stats)
		}
	})
}

func TestSupervisorStoreSinkValidation(t *testing.T) {
	if _, err := NewSupervisor(SupervisorConfig{
		Source:    &scriptedSource{},
		StoreSink: true,
	}); err == nil {
		t.Fatal("StoreSink without Store: expected error")
	}
	if _, err := NewSupervisor(SupervisorConfig{
		Source:    &scriptedSource{},
		StoreSink: true,
		Store:     &stagingDeadStore{},
		Sink:      &flakySink{},
	}); err == nil {
		t.Fatal("StoreSink with Sink: expected error")
	}
}

// TestSupervisorStoreSinkDelivers: in StoreSink mode triggered dumps
// land in the durable store, and delivered events are readable back.
func TestSupervisorStoreSinkDelivers(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s, err := NewSupervisor(SupervisorConfig{
		Source:    lossyScript(50, 50, 50),
		Triggers:  []Trigger{&LossDetector{Tolerance: 1}},
		Store:     st,
		StoreSink: true,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.Step()
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.Dumps != 3 || stats.DumpsWritten != 3 || stats.Spilled != 0 {
		t.Fatalf("delivery accounting: %+v", stats)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	cur := st.NewCursor()
	defer cur.Close()
	es, err := tracer.Drain(cur, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 3 {
		t.Fatalf("store holds %d events, want 3", len(es))
	}
}

// TestSupervisorStoreSinkDeadStoreSpills: a store whose write path died
// is the StoreSink analogue of a permanent sink failure — everything
// pending spills at once instead of burning the retry budget.
func TestSupervisorStoreSinkDeadStoreSpills(t *testing.T) {
	fs := &stagingDeadStore{err: errors.New("disk gone")}
	s, err := NewSupervisor(SupervisorConfig{
		Source:    lossyScript(50, 50),
		Triggers:  []Trigger{&LossDetector{Tolerance: 1}},
		Store:     fs,
		StoreSink: true,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		s.Step()
	}
	stats := s.Stats()
	if stats.DumpsWritten != 0 || stats.Spilled != 2 {
		t.Fatalf("dead-store accounting: %+v", stats)
	}
	if !s.Health().SinkFailed {
		t.Fatal("SinkFailed not reported")
	}
	if s.Health().PendingDumps != 0 {
		t.Fatal("pending dumps left queued behind a dead store")
	}
}
