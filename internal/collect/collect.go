// Package collect implements the daemon-collector deployment model the
// paper's production system uses: tracing runs continuously into the
// in-memory buffer, a collector daemon follows it incrementally, and when
// a suspicious symptom is detected the recent window is dumped for offline
// analysis (§2.1 "a daemon collector dumps the buffer"; §6 deploys
// watchdog daemons with 10-20 s timeouts to catch silent defects).
//
// Triggers operate on the events' virtual timestamps, so the package
// works identically under replayed and live time.
package collect

import (
	"fmt"
	"io"
	"strings"

	"btrace/internal/tracer"
)

// Poller is the incremental trace source (satisfied by core.Reader).
type Poller interface {
	// Poll returns events newer than the previous call, oldest first,
	// and the count of events lost to overwrite between calls.
	Poll() ([]tracer.Entry, uint64)
}

// Trigger inspects newly collected events and decides whether to fire.
// Implementations are driven by a single collector goroutine.
type Trigger interface {
	// Observe consumes new events in stamp order and returns a non-empty
	// reason when the trigger fires.
	Observe(es []tracer.Entry) (reason string)
	// Name identifies the trigger in dump reasons.
	Name() string
}

// Watchdog fires when a category goes silent for longer than TimeoutNs of
// virtual time — the §6 silent-defect pattern (freeze/wake-up daemons use
// timeouts exceeding 20 s; driver daemons about 10 s).
type Watchdog struct {
	// Category is the category whose absence indicates the defect.
	Category uint8
	// TimeoutNs is the maximum tolerated silence in virtual nanoseconds.
	TimeoutNs uint64

	lastSeen uint64
	latest   uint64
	seenAny  bool
	fired    bool
}

// Name implements Trigger.
func (w *Watchdog) Name() string { return fmt.Sprintf("watchdog(cat=%d)", w.Category) }

// Observe implements Trigger.
func (w *Watchdog) Observe(es []tracer.Entry) string {
	for i := range es {
		e := &es[i]
		if e.TS > w.latest {
			w.latest = e.TS
		}
		if e.Category == w.Category {
			// A late (out-of-order) heartbeat must not move lastSeen
			// backwards: that would fabricate a silence episode.
			if e.TS > w.lastSeen {
				w.lastSeen = e.TS
			}
			w.seenAny = true
			w.fired = false
		}
	}
	if !w.seenAny || w.fired {
		return ""
	}
	if w.latest > w.lastSeen && w.latest-w.lastSeen > w.TimeoutNs {
		w.fired = true // fire once per silence episode
		return fmt.Sprintf("category %d silent for %.1fs (timeout %.1fs)",
			w.Category, float64(w.latest-w.lastSeen)/1e9, float64(w.TimeoutNs)/1e9)
	}
	return ""
}

// RateSpike fires when a category's event rate within a sliding virtual
// window exceeds a threshold — the anomaly-detector pattern (§2.2 Obs. 3)
// that decides when to grow the buffer or dump.
type RateSpike struct {
	// Category to monitor.
	Category uint8
	// WindowNs is the sliding window length in virtual nanoseconds.
	WindowNs uint64
	// MaxEvents is the tolerated event count per window.
	MaxEvents int

	times []uint64
	fired bool
}

// Name implements Trigger.
func (r *RateSpike) Name() string { return fmt.Sprintf("ratespike(cat=%d)", r.Category) }

// Observe implements Trigger.
func (r *RateSpike) Observe(es []tracer.Entry) string {
	for i := range es {
		e := &es[i]
		if e.Category != r.Category {
			continue
		}
		r.times = append(r.times, e.TS)
		// Drop entries outside the window. A late event (e.TS older than
		// a recorded time) must not be treated as "infinitely far ahead":
		// the unsigned subtraction would underflow and wrongly empty the
		// window, so only times strictly older than e.TS are candidates.
		cut := 0
		for cut < len(r.times) && r.times[cut] < e.TS && e.TS-r.times[cut] > r.WindowNs {
			cut++
		}
		r.times = r.times[cut:]
		if len(r.times) > r.MaxEvents {
			if r.fired {
				continue
			}
			r.fired = true
			return fmt.Sprintf("category %d rate %d/window exceeds %d", r.Category, len(r.times), r.MaxEvents)
		}
		r.fired = false
	}
	return ""
}

// LossDetector fires when the collector itself misses events between
// polls (the buffer wrapped faster than the daemon drained), signalling
// that the buffer should be grown.
type LossDetector struct {
	// Tolerance is the number of missed events tolerated per poll.
	Tolerance uint64
}

// Name implements Trigger.
func (l *LossDetector) Name() string { return "lossdetector" }

// Observe implements Trigger; the Collector feeds it the missed count via
// ObserveMissed, so Observe never fires.
func (l *LossDetector) Observe([]tracer.Entry) string { return "" }

// ObserveMissed reports missed events from a poll.
func (l *LossDetector) ObserveMissed(missed uint64) string {
	if missed > l.Tolerance {
		return fmt.Sprintf("collector missed %d events (tolerance %d)", missed, l.Tolerance)
	}
	return ""
}

// Dump is one triggered collection.
type Dump struct {
	// Reason describes the triggers that fired, each prefixed with its
	// name; simultaneous triggers are joined with "; " (a watchdog and a
	// rate spike firing on the same poll both appear).
	Reason string
	// Events is the retained window at the time of the dump.
	Events []tracer.Entry
	// Quarantined holds entries the readout Verifier rejected instead of
	// letting them corrupt the window (empty unless a Supervisor with
	// verification produced the dump).
	Quarantined []tracer.Entry
	// Violations describes, one per quarantined entry, which invariant
	// each rejected entry broke.
	Violations []string
}

// Collector follows a trace source and dumps on triggers.
type Collector struct {
	src      Poller
	triggers []Trigger
	loss     *LossDetector
	// window is the rolling context kept for dumps.
	window []tracer.Entry
	// MaxWindow bounds the rolling context (default 1<<16 events).
	maxWindow int

	polls  uint64
	missed uint64
}

// Config configures a Collector.
type Config struct {
	// Source is the incremental trace source.
	Source Poller
	// Triggers fire dumps. A LossDetector among them additionally
	// receives the per-poll missed counts.
	Triggers []Trigger
	// MaxWindowEvents bounds the rolling context window (default 65536).
	MaxWindowEvents int
}

// New creates a Collector.
func New(cfg Config) (*Collector, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("collect: nil source")
	}
	if cfg.MaxWindowEvents == 0 {
		cfg.MaxWindowEvents = 1 << 16
	}
	c := &Collector{src: cfg.Source, triggers: cfg.Triggers, maxWindow: cfg.MaxWindowEvents}
	for _, t := range cfg.Triggers {
		if l, ok := t.(*LossDetector); ok {
			c.loss = l
		}
	}
	return c, nil
}

// Step polls once, feeds the triggers, and returns a Dump if any fired
// (nil otherwise).
func (c *Collector) Step() *Dump {
	es, missed := c.src.Poll()
	return c.Ingest(es, missed)
}

// Ingest feeds one poll's worth of events (and its missed count) through
// the window and triggers, returning a Dump if any trigger fired. It is
// the poll-free half of Step, used by Supervisor, which obtains events
// from a fallible source with its own retry policy. All triggers that
// fire on the same batch contribute to the dump reason — a watchdog and
// a rate spike firing together are both reported.
//
// Ingest takes ownership of es (the Poller contract hands over fresh
// slices). For batches borrowed from a cursor arena, use IngestShared.
func (c *Collector) Ingest(es []tracer.Entry, missed uint64) *Dump {
	return c.ingest(es, missed, false)
}

// IngestShared is Ingest for borrowed batches (the tracer.Cursor
// ownership contract: entries and payloads are only valid until the next
// Next call). Triggers observe the batch in place; what enters the
// rolling window is deep-copied.
func (c *Collector) IngestShared(es []tracer.Entry, missed uint64) *Dump {
	return c.ingest(es, missed, true)
}

func (c *Collector) ingest(es []tracer.Entry, missed uint64, shared bool) *Dump {
	c.polls++
	c.missed += missed

	if shared {
		c.window = tracer.CloneEntries(c.window, es)
	} else {
		c.window = append(c.window, es...)
	}
	if over := len(c.window) - c.maxWindow; over > 0 {
		c.window = append(c.window[:0], c.window[over:]...)
	}

	var reasons []string
	if c.loss != nil && missed > 0 {
		if r := c.loss.ObserveMissed(missed); r != "" {
			reasons = append(reasons, c.loss.Name()+": "+r)
		}
	}
	for _, t := range c.triggers {
		if r := t.Observe(es); r != "" {
			reasons = append(reasons, t.Name()+": "+r)
		}
	}
	if len(reasons) == 0 {
		return nil
	}
	dump := &Dump{Reason: strings.Join(reasons, "; "), Events: append([]tracer.Entry(nil), c.window...)}
	c.window = c.window[:0] // a dumped window is consumed
	return dump
}

// Stats returns (polls performed, events missed across all polls).
func (c *Collector) Stats() (polls, missed uint64) { return c.polls, c.missed }

// WriteTo serializes a dump's events as consecutive wire records (the
// format btrace-inspect consumes).
func (d *Dump) WriteTo(w io.Writer) (int64, error) {
	var total int64
	buf := make([]byte, tracer.EventWireSize(tracer.MaxPayload))
	for i := range d.Events {
		n, err := tracer.EncodeEvent(buf, &d.Events[i])
		if err != nil {
			return total, err
		}
		m, err := w.Write(buf[:n])
		total += int64(m)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
