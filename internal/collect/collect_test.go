package collect

import (
	"bytes"
	"strings"
	"testing"

	"btrace/internal/core"
	"btrace/internal/tracer"
)

// fakePoller replays scripted polls.
type fakePoller struct {
	polls  [][]tracer.Entry
	missed []uint64
	i      int
}

func (f *fakePoller) Poll() ([]tracer.Entry, uint64) {
	if f.i >= len(f.polls) {
		return nil, 0
	}
	es, m := f.polls[f.i], uint64(0)
	if f.i < len(f.missed) {
		m = f.missed[f.i]
	}
	f.i++
	return es, m
}

func ev(stamp, ts uint64, cat uint8) tracer.Entry {
	return tracer.Entry{Stamp: stamp, TS: ts, Category: cat}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil source: expected error")
	}
	c, err := New(Config{Source: &fakePoller{}})
	if err != nil {
		t.Fatal(err)
	}
	if c.maxWindow != 1<<16 {
		t.Fatalf("default window = %d", c.maxWindow)
	}
}

func TestWatchdogFiresOnSilence(t *testing.T) {
	w := &Watchdog{Category: 7, TimeoutNs: 10e9} // 10 s, the §6 driver daemon
	// Heartbeats every 5 s: no fire.
	if r := w.Observe([]tracer.Entry{ev(1, 0, 7), ev(2, 5e9, 7), ev(3, 9e9, 1)}); r != "" {
		t.Fatalf("fired early: %s", r)
	}
	// Other traffic continues, category 7 silent for 12 s: fire once.
	if r := w.Observe([]tracer.Entry{ev(4, 17.5e9, 1)}); r == "" {
		t.Fatal("did not fire after timeout")
	}
	if r := w.Observe([]tracer.Entry{ev(5, 18e9, 1)}); r != "" {
		t.Fatalf("re-fired in same silence episode: %s", r)
	}
	// The category resumes, then goes silent again: fires again.
	if r := w.Observe([]tracer.Entry{ev(6, 19e9, 7)}); r != "" {
		t.Fatalf("fired on resume: %s", r)
	}
	if r := w.Observe([]tracer.Entry{ev(7, 40e9, 1)}); r == "" {
		t.Fatal("did not fire on second silence")
	}
}

func TestWatchdogNeverFiresWithoutBaseline(t *testing.T) {
	w := &Watchdog{Category: 7, TimeoutNs: 1}
	if r := w.Observe([]tracer.Entry{ev(1, 100e9, 1)}); r != "" {
		t.Fatalf("fired with no baseline: %s", r)
	}
}

func TestRateSpike(t *testing.T) {
	r := &RateSpike{Category: 2, WindowNs: 1e9, MaxEvents: 3}
	// 3 events in a second: at the limit, no fire.
	if s := r.Observe([]tracer.Entry{ev(1, 0, 2), ev(2, 0.3e9, 2), ev(3, 0.6e9, 2)}); s != "" {
		t.Fatalf("fired at limit: %s", s)
	}
	// A 4th within the window: fire.
	if s := r.Observe([]tracer.Entry{ev(4, 0.9e9, 2)}); s == "" {
		t.Fatal("did not fire over limit")
	}
	// Quiet period drains the window; normal rate does not re-fire.
	if s := r.Observe([]tracer.Entry{ev(5, 10e9, 2), ev(6, 11.5e9, 2)}); s != "" {
		t.Fatalf("re-fired after drain: %s", s)
	}
	// Other categories never count.
	rs := &RateSpike{Category: 2, WindowNs: 1e9, MaxEvents: 0}
	if s := rs.Observe([]tracer.Entry{ev(1, 0, 3), ev(2, 0, 3)}); s != "" {
		t.Fatalf("counted foreign category: %s", s)
	}
}

func TestLossDetector(t *testing.T) {
	l := &LossDetector{Tolerance: 5}
	if l.Observe(nil) != "" {
		t.Fatal("Observe must not fire")
	}
	if l.ObserveMissed(5) != "" {
		t.Fatal("within tolerance")
	}
	if l.ObserveMissed(6) == "" {
		t.Fatal("over tolerance")
	}
}

func TestCollectorStepAndDump(t *testing.T) {
	src := &fakePoller{
		polls: [][]tracer.Entry{
			{ev(1, 0, 7), ev(2, 1e9, 1)},
			{ev(3, 2e9, 1)},
			{ev(4, 30e9, 1)}, // category 7 now silent for 30 s
		},
	}
	c, err := New(Config{
		Source:   src,
		Triggers: []Trigger{&Watchdog{Category: 7, TimeoutNs: 20e9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := c.Step(); d != nil {
		t.Fatalf("early dump: %+v", d)
	}
	if d := c.Step(); d != nil {
		t.Fatalf("early dump: %+v", d)
	}
	d := c.Step()
	if d == nil {
		t.Fatal("no dump on watchdog fire")
	}
	if !strings.Contains(d.Reason, "watchdog(cat=7)") {
		t.Fatalf("reason: %s", d.Reason)
	}
	// The dump contains the full rolling context (all 4 events).
	if len(d.Events) != 4 {
		t.Fatalf("dump has %d events, want 4", len(d.Events))
	}
	// The window resets after a dump.
	if d2 := c.Step(); d2 != nil {
		t.Fatalf("dump after exhaustion: %+v", d2)
	}
	polls, missed := c.Stats()
	if polls != 4 || missed != 0 {
		t.Fatalf("stats: %d/%d", polls, missed)
	}
}

func TestCollectorLossDump(t *testing.T) {
	src := &fakePoller{
		polls:  [][]tracer.Entry{{ev(10, 0, 1)}},
		missed: []uint64{100},
	}
	loss := &LossDetector{Tolerance: 10}
	c, err := New(Config{Source: src, Triggers: []Trigger{loss}})
	if err != nil {
		t.Fatal(err)
	}
	d := c.Step()
	if d == nil || !strings.Contains(d.Reason, "missed 100") {
		t.Fatalf("dump: %+v", d)
	}
}

// TestCollectorAllReasonsReported: a watchdog and a rate spike firing on
// the same poll both appear in the dump reason (the first-trigger-wins
// bug lost one of the signals).
func TestCollectorAllReasonsReported(t *testing.T) {
	src := &fakePoller{
		polls: [][]tracer.Entry{
			{ev(1, 0, 7)},
			// Category 7 silent for 30 s AND category 2 bursting.
			{ev(2, 30e9, 2), ev(3, 30.1e9, 2), ev(4, 30.2e9, 2)},
		},
		missed: []uint64{0, 50},
	}
	c, err := New(Config{
		Source: src,
		Triggers: []Trigger{
			&Watchdog{Category: 7, TimeoutNs: 20e9},
			&RateSpike{Category: 2, WindowNs: 1e9, MaxEvents: 2},
			&LossDetector{Tolerance: 10},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := c.Step(); d != nil {
		t.Fatalf("early dump: %+v", d)
	}
	d := c.Step()
	if d == nil {
		t.Fatal("no dump")
	}
	for _, frag := range []string{"watchdog(cat=7)", "ratespike(cat=2)", "lossdetector", "; "} {
		if !strings.Contains(d.Reason, frag) {
			t.Errorf("reason %q missing %q", d.Reason, frag)
		}
	}
}

// TestWatchdogOutOfOrderTimestamps: a late heartbeat with an old TS must
// not rewind lastSeen and fabricate a silence episode.
func TestWatchdogOutOfOrderTimestamps(t *testing.T) {
	w := &Watchdog{Category: 7, TimeoutNs: 10e9}
	if r := w.Observe([]tracer.Entry{ev(1, 20e9, 7), ev(2, 21e9, 1)}); r != "" {
		t.Fatalf("fired early: %s", r)
	}
	// A delayed heartbeat from TS 1 s arrives: lastSeen must stay at 20 s.
	if r := w.Observe([]tracer.Entry{ev(3, 1e9, 7)}); r != "" {
		t.Fatalf("fired on late heartbeat: %s", r)
	}
	if r := w.Observe([]tracer.Entry{ev(4, 25e9, 1)}); r != "" {
		t.Fatalf("silence fabricated by rewound lastSeen: %s", r)
	}
	if r := w.Observe([]tracer.Entry{ev(5, 35e9, 1)}); r == "" {
		t.Fatal("real silence after 20s not detected")
	}
}

// TestRateSpikeOutOfOrderTimestamps: a late event must not underflow the
// window arithmetic and wrongly empty the window.
func TestRateSpikeOutOfOrderTimestamps(t *testing.T) {
	r := &RateSpike{Category: 2, WindowNs: 1e9, MaxEvents: 3}
	if s := r.Observe([]tracer.Entry{ev(1, 10e9, 2), ev(2, 10.2e9, 2), ev(3, 10.4e9, 2)}); s != "" {
		t.Fatalf("fired at limit: %s", s)
	}
	// A late event (TS 9.8 s < the recorded 10 s) arrives: without the
	// guard, 9.8e9 - 10e9 underflows and empties the window; the burst
	// below then goes undetected.
	if s := r.Observe([]tracer.Entry{ev(4, 9.8e9, 2)}); s == "" {
		t.Fatal("4 events within the window must fire despite the late arrival")
	}
}

func TestCollectorWindowBound(t *testing.T) {
	var es []tracer.Entry
	for i := 1; i <= 100; i++ {
		es = append(es, ev(uint64(i), uint64(i), 1))
	}
	src := &fakePoller{polls: [][]tracer.Entry{es, {ev(101, 200e9, 1), ev(102, 201e9, 7)}, {ev(103, 230e9, 1)}}}
	c, err := New(Config{
		Source:          src,
		Triggers:        []Trigger{&Watchdog{Category: 7, TimeoutNs: 20e9}},
		MaxWindowEvents: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Step()
	c.Step()
	d := c.Step()
	if d == nil {
		t.Fatal("no dump")
	}
	if len(d.Events) > 50 {
		t.Fatalf("window exceeded bound: %d", len(d.Events))
	}
	// The newest events are the ones kept.
	if d.Events[len(d.Events)-1].Stamp != 103 {
		t.Fatalf("newest in window: %d", d.Events[len(d.Events)-1].Stamp)
	}
}

func TestDumpWriteTo(t *testing.T) {
	d := &Dump{Events: []tracer.Entry{
		{Stamp: 1, Payload: []byte("x")},
		{Stamp: 2, Payload: []byte("y")},
	}}
	var buf bytes.Buffer
	n, err := d.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("n=%d len=%d", n, buf.Len())
	}
	recs, truncated := tracer.DecodeAll(buf.Bytes())
	if truncated || len(recs) != 2 {
		t.Fatalf("decode: %d records truncated=%v", len(recs), truncated)
	}
}

// TestCollectorAgainstLiveBuffer wires the collector to a real BTrace
// reader: end-to-end silent-defect detection over a live buffer.
func TestCollectorAgainstLiveBuffer(t *testing.T) {
	b, err := core.New(core.Options{Cores: 2, BlockSize: 256, ActiveBlocks: 4, Ratio: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := b.NewReader()
	defer r.Close()
	c, err := New(Config{
		Source:   r,
		Triggers: []Trigger{&Watchdog{Category: 9, TimeoutNs: 10e9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &tracer.FixedProc{CoreID: 0}
	// Heartbeat plus noise, then the heartbeat stops.
	stamp := uint64(0)
	write := func(ts uint64, cat uint8) {
		stamp++
		if err := b.Write(p, &tracer.Entry{Stamp: stamp, TS: ts, Category: cat, Payload: make([]byte, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	write(0, 9)
	for ts := uint64(1e9); ts < 8e9; ts += 1e9 {
		write(ts, 1)
	}
	if d := c.Step(); d != nil {
		t.Fatalf("early dump: %s", d.Reason)
	}
	for ts := uint64(8e9); ts < 25e9; ts += 1e9 {
		write(ts, 1)
	}
	d := c.Step()
	if d == nil {
		t.Fatal("watchdog did not fire over live buffer")
	}
	if len(d.Events) == 0 {
		t.Fatal("empty dump")
	}
}
