package collect

import (
	"runtime"

	"btrace/internal/obs"
)

// supObs mirrors SupervisorStats (plus the health gauges) into obs
// primitives. The Supervisor itself is single-goroutine and keeps its
// stats as a plain struct; once per Step/Flush it folds the accumulated
// deltas into these atomic counters so the /metrics scraper can read
// them concurrently without racing the pipeline.
//
// Like bufCounters in internal/core, supObs is allocated separately from
// the Supervisor and is what the registry's collector closure captures,
// keeping the Supervisor finalizable; its finalizer folds these counters
// into the retired totals.
type supObs struct {
	polls            *obs.Counter
	pollErrors       *obs.Counter
	pollBackoffSteps *obs.Counter
	eventsMissed     *obs.Counter

	dumps              *obs.Counter
	dumpsWritten       *obs.Counter
	sinkErrors         *obs.Counter
	sinkBackoff        *obs.Counter
	spilled            *obs.Counter
	spillDropped       *obs.Counter
	spillDroppedEvents *obs.Counter
	spillPersisted     *obs.Counter

	grows   *obs.Counter
	shrinks *obs.Counter

	quarantined     *obs.Counter
	wedgeDetections *obs.Counter

	pendingDumps obs.Gauge
	spilledDumps obs.Gauge
	sourceWedged obs.Gauge
	sinkFailed   obs.Gauge
}

func newSupObs() *supObs {
	return &supObs{
		polls:              obs.NewCounter(1),
		pollErrors:         obs.NewCounter(1),
		pollBackoffSteps:   obs.NewCounter(1),
		eventsMissed:       obs.NewCounter(1),
		dumps:              obs.NewCounter(1),
		dumpsWritten:       obs.NewCounter(1),
		sinkErrors:         obs.NewCounter(1),
		sinkBackoff:        obs.NewCounter(1),
		spilled:            obs.NewCounter(1),
		spillDropped:       obs.NewCounter(1),
		spillDroppedEvents: obs.NewCounter(1),
		spillPersisted:     obs.NewCounter(1),
		grows:              obs.NewCounter(1),
		shrinks:            obs.NewCounter(1),
		quarantined:        obs.NewCounter(1),
		wedgeDetections:    obs.NewCounter(1),
	}
}

// addDeltas folds the difference between the current and the previously
// published stats into the counters. Stats fields are monotonic, so
// plain subtraction is safe.
func (o *supObs) addDeltas(cur, last SupervisorStats) {
	o.polls.Add(cur.Polls - last.Polls)
	o.pollErrors.Add(cur.PollErrors - last.PollErrors)
	o.pollBackoffSteps.Add(cur.PollBackoffSteps - last.PollBackoffSteps)
	o.eventsMissed.Add(cur.EventsMissed - last.EventsMissed)
	o.dumps.Add(cur.Dumps - last.Dumps)
	o.dumpsWritten.Add(cur.DumpsWritten - last.DumpsWritten)
	o.sinkErrors.Add(cur.SinkErrors - last.SinkErrors)
	o.sinkBackoff.Add(cur.SinkBackoff - last.SinkBackoff)
	o.spilled.Add(cur.Spilled - last.Spilled)
	o.spillDropped.Add(cur.SpillDropped - last.SpillDropped)
	o.spillDroppedEvents.Add(cur.SpillDroppedEvents - last.SpillDroppedEvents)
	o.spillPersisted.Add(cur.SpillPersisted - last.SpillPersisted)
	o.grows.Add(cur.Grows - last.Grows)
	o.shrinks.Add(cur.Shrinks - last.Shrinks)
	o.quarantined.Add(cur.Quarantined - last.Quarantined)
	o.wedgeDetections.Add(cur.WedgeDetections - last.WedgeDetections)
}

// collect emits the supervisor's series. It runs under the registry lock
// and must not reference the Supervisor (see type comment).
func (o *supObs) collect(e *obs.Emitter) {
	e.Counter("btrace_collect_polls_total", "successful source polls", o.polls.Load())
	e.Counter("btrace_collect_poll_errors_total", "failed source polls", o.pollErrors.Load())
	e.Counter("btrace_collect_poll_backoff_steps_total", "steps skipped waiting out poll backoff", o.pollBackoffSteps.Load())
	e.Counter("btrace_collect_missed_events_total", "events lost to overwrite between polls", o.eventsMissed.Load())
	e.Counter("btrace_collect_dumps_total", "dumps produced by triggers", o.dumps.Load())
	e.Counter("btrace_collect_dumps_written_total", "dumps fully delivered to the sink", o.dumpsWritten.Load())
	e.Counter("btrace_collect_sink_errors_total", "failed sink writes", o.sinkErrors.Load())
	e.Counter("btrace_collect_sink_backoff_steps_total", "steps skipped waiting out sink backoff", o.sinkBackoff.Load())
	e.Counter("btrace_collect_spilled_total", "dumps diverted to the in-memory spill ring", o.spilled.Load())
	e.Counter("btrace_collect_spill_dropped_total", "spilled dumps evicted and lost", o.spillDropped.Load())
	e.Counter("btrace_collect_spill_dropped_events_total", "events inside dropped spill dumps", o.spillDroppedEvents.Load())
	e.Counter("btrace_collect_spill_persisted_total", "evicted dumps persisted to the durable store", o.spillPersisted.Load())
	e.Counter("btrace_collect_grows_total", "adaptive buffer grow operations", o.grows.Load())
	e.Counter("btrace_collect_shrinks_total", "adaptive buffer shrink operations", o.shrinks.Load())
	e.Counter("btrace_collect_quarantined_total", "entries rejected by the verifier", o.quarantined.Load())
	e.Counter("btrace_collect_wedge_detections_total", "times the self-watchdog declared the source wedged", o.wedgeDetections.Load())
	e.Gauge("btrace_collect_pending_dumps", "dumps awaiting sink delivery", float64(o.pendingDumps.Load()))
	e.Gauge("btrace_collect_spilled_dumps", "dumps held in the spill ring", float64(o.spilledDumps.Load()))
	e.Gauge("btrace_collect_source_wedged", "1 while the self-watchdog declares the source wedged", float64(o.sourceWedged.Load()))
	e.Gauge("btrace_collect_sink_failed", "1 while the sink is in permanent failure", float64(o.sinkFailed.Load()))
	e.Gauge("btrace_collect_supervisors", "live supervised pipelines", 1)
}

// publishObs folds the stat deltas accumulated since the last publish
// into the process-wide counters and refreshes the health gauges. Called
// once per Step and per Flush — the supervisor's slow path, never the
// per-event path.
func (s *Supervisor) publishObs() {
	o := s.obs
	o.addDeltas(s.stats, s.published)
	s.published = s.stats
	o.pendingDumps.Set(int64(len(s.pending)))
	o.spilledDumps.Set(int64(len(s.spill)))
	o.sourceWedged.SetBool(s.sourceWedged)
	o.sinkFailed.SetBool(s.sinkFailed)
}

// registerObs wires the supervisor's counters into the process-wide
// registry; the finalizer folds them into the retired totals when the
// Supervisor becomes unreachable. The collector closure captures only
// the counters, never s, so registration does not defeat the finalizer.
func (s *Supervisor) registerObs() {
	reg := obs.Default()
	id := reg.Register(s.obs.collect)
	runtime.SetFinalizer(s, func(*Supervisor) { reg.Fold(id) })
}
