package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"btrace/internal/tracer"
	"btrace/internal/workload"
)

// Encoder serializes entries in the repository's wire format directly to
// an io.Writer through one reusable record buffer, so dumping a readout
// — or shipping a live cursor — allocates O(1) regardless of trace size.
type Encoder struct {
	w   io.Writer
	buf []byte
}

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: w}
}

// Encode writes one entry.
func (enc *Encoder) Encode(e *tracer.Entry) error {
	size := e.WireSize()
	if cap(enc.buf) < size {
		enc.buf = make([]byte, size)
	}
	n, err := tracer.EncodeEvent(enc.buf[:size], e)
	if err != nil {
		return err
	}
	_, err = enc.w.Write(enc.buf[:n])
	return err
}

// EncodeBatch writes every entry of es in order.
func (enc *Encoder) EncodeBatch(es []tracer.Entry) error {
	for i := range es {
		if err := enc.Encode(&es[i]); err != nil {
			return err
		}
	}
	return nil
}

// FromCursor drains c through batch (which sizes each read and must be
// non-empty) into the output, returning the number of events written and
// the total missed count the cursor reported. No intermediate full-trace
// slice is ever built.
func (enc *Encoder) FromCursor(c tracer.Cursor, batch []tracer.Entry) (events int, missed uint64, err error) {
	for {
		n, m, err := c.Next(batch)
		missed += m
		if err != nil {
			return events, missed, err
		}
		if n == 0 {
			return events, missed, nil
		}
		if err := enc.EncodeBatch(batch[:n]); err != nil {
			return events, missed, err
		}
		events += n
	}
}

// maxRecordSize bounds how large a single streamed record may claim to
// be: the biggest legitimate record is an event with MaxPayload bytes.
// Dumps only contain event records, and the cap keeps a corrupt or
// adversarial size word from driving an unbounded allocation.
var maxRecordSize = tracer.EventWireSize(tracer.MaxPayload)

// Decoder reads wire-format records from an io.Reader incrementally: one
// record in memory at a time, through a reusable buffer. It is the
// streaming counterpart of tracer.DecodeAll for serialized readouts too
// large (or too remote) to slurp into one byte slice.
type Decoder struct {
	r   io.Reader
	buf []byte
	// events and skipped count decoded event records and tolerated
	// structural records, for diagnostics.
	events  int
	skipped int
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r, buf: make([]byte, 512)}
}

// Next decodes the next event record into *e, skipping structural
// records (dummy, block header, skip marker). It returns io.EOF at a
// clean end of stream, io.ErrUnexpectedEOF when the stream ends inside a
// record, and tracer.ErrCorrupt-wrapped errors for malformed records.
// The entry's Payload borrows the decoder's buffer: it is valid only
// until the next call to Next.
func (d *Decoder) Next(e *tracer.Entry) error {
	for {
		if _, err := io.ReadFull(d.r, d.buf[:tracer.Align]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return io.ErrUnexpectedEOF
			}
			return err // io.EOF: clean end between records
		}
		_, size, err := tracer.PeekRecord(d.buf[:tracer.Align])
		if err != nil {
			return err
		}
		if size > maxRecordSize {
			return fmt.Errorf("%w: record size %d exceeds maximum %d", tracer.ErrCorrupt, size, maxRecordSize)
		}
		if cap(d.buf) < size {
			grown := make([]byte, size)
			copy(grown, d.buf[:tracer.Align])
			d.buf = grown
		}
		if _, err := io.ReadFull(d.r, d.buf[tracer.Align:size]); err != nil {
			if err == io.EOF {
				return io.ErrUnexpectedEOF
			}
			return err
		}
		rec, err := tracer.DecodeRecord(d.buf[:size])
		if err != nil {
			return err
		}
		if rec.Kind != tracer.KindEvent {
			d.skipped++
			continue
		}
		d.events++
		*e = rec.Event
		return nil
	}
}

// Counts reports how many event records were decoded and how many
// structural records were skipped so far.
func (d *Decoder) Counts() (events, skipped int) {
	return d.events, d.skipped
}

// DecodeInto appends every remaining event of d to dst (deep copies, the
// caller owns them) and returns the result. It is the bridge back to the
// slice world for consumers that genuinely need the whole readout.
func (d *Decoder) DecodeInto(dst []tracer.Entry) ([]tracer.Entry, error) {
	var e tracer.Entry
	for {
		err := d.Next(&e)
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
		dst = tracer.CloneEntries(dst, []tracer.Entry{e})
	}
}

// TextCursor streams c through batch to w in the Text format, never
// materializing the full trace. It returns the event count and the total
// missed count the cursor reported.
func TextCursor(w io.Writer, c tracer.Cursor, batch []tracer.Entry) (events int, missed uint64, err error) {
	return drainTo(c, batch, func(es []tracer.Entry) error { return Text(w, es) })
}

// CSVCursor streams c through batch to w as CSV with one header row.
func CSVCursor(w io.Writer, c tracer.Cursor, batch []tracer.Entry) (events int, missed uint64, err error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return 0, 0, err
	}
	events, missed, err = drainTo(c, batch, func(es []tracer.Entry) error { return csvRows(cw, es) })
	if err != nil {
		return events, missed, err
	}
	cw.Flush()
	return events, missed, cw.Error()
}

// ChromeTraceCursor streams c through batch to w as Chrome trace-event
// JSON: the traceEvents array is emitted incrementally, one event at a
// time, and the metadata object (including the final event count) is
// appended once the cursor is exhausted.
func ChromeTraceCursor(w io.Writer, c tracer.Cursor, batch []tracer.Entry) (events int, missed uint64, err error) {
	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return 0, 0, err
	}
	written := 0 // events emitted so far, across batches
	events, missed, err = drainTo(c, batch, func(es []tracer.Entry) error {
		for i := range es {
			e := &es[i]
			raw, err := json.Marshal(chromeEvent{
				Name: workload.Category(e.Category).Name(),
				Ph:   "i",
				TS:   float64(e.TS) / 1e3,
				PID:  int(e.Core),
				TID:  int(e.TID),
				Args: map[string]any{
					"stamp": e.Stamp,
					"level": e.Level,
					"bytes": e.WireSize(),
				},
			})
			if err != nil {
				return err
			}
			if written > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := w.Write(raw); err != nil {
				return err
			}
			written++
		}
		return nil
	})
	if err != nil {
		return events, missed, err
	}
	_, err = fmt.Fprintf(w, `],"metadata":{"tracer":"btrace","event-count":%d,"missed":%d}}%s`,
		events, missed, "\n")
	return events, missed, err
}

// drainTo reads c to exhaustion through batch, handing each filled batch
// to sink, and accumulates the counts. The batch contents are only valid
// inside the sink call, per the cursor ownership contract.
func drainTo(c tracer.Cursor, batch []tracer.Entry, sink func([]tracer.Entry) error) (events int, missed uint64, err error) {
	if len(batch) == 0 {
		return 0, 0, fmt.Errorf("export: empty batch")
	}
	for {
		n, m, err := c.Next(batch)
		missed += m
		if err != nil {
			return events, missed, err
		}
		if n == 0 {
			return events, missed, nil
		}
		if err := sink(batch[:n]); err != nil {
			return events, missed, err
		}
		events += n
	}
}
