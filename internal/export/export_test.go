package export

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"btrace/internal/tracer"
)

func sample() []tracer.Entry {
	return []tracer.Entry{
		{Stamp: 1, TS: 1_500_000, Core: 0, TID: 42, Category: 11, Level: 2, Payload: []byte("hello")},
		{Stamp: 2, TS: 2_500_000, Core: 11, TID: 43, Category: 17, Level: 3, Payload: []byte{0x00, 0xFF}},
		{Stamp: 3, TS: 3_500_000, Core: 5, TID: 44, Category: 2, Level: 1},
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed.TraceEvents) != 3 {
		t.Fatalf("%d events", len(parsed.TraceEvents))
	}
	ev := parsed.TraceEvents[0]
	if ev.Name != "sched" || ev.Ph != "i" || ev.TS != 1500 || ev.PID != 0 || ev.TID != 42 {
		t.Fatalf("event 0: %+v", ev)
	}
	if ev.Args["stamp"].(float64) != 1 {
		t.Fatalf("args: %v", ev.Args)
	}
	if parsed.Metadata["tracer"] != "btrace" {
		t.Fatalf("metadata: %v", parsed.Metadata)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("invalid JSON for empty input")
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := CSV(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	if lines[0] != "stamp,ts_ns,core,tid,category,level,payload_bytes" {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,1500000,0,42,sched,2,5") {
		t.Fatalf("row 1: %q", lines[1])
	}
	// Category with a comma in its name must be quoted correctly.
	if !strings.Contains(lines[2], `energy/thermal/...`) {
		t.Fatalf("row 2: %q", lines[2])
	}
}

func TestText(t *testing.T) {
	var buf bytes.Buffer
	if err := Text(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{`"hello"`, "00ff", "stamp=3", "[011]", "0.001500s"} {
		if !strings.Contains(out, frag) {
			t.Errorf("text output missing %q:\n%s", frag, out)
		}
	}
	// Long payloads truncate.
	long := []tracer.Entry{{Stamp: 9, Payload: bytes.Repeat([]byte("a"), 100)}}
	buf.Reset()
	if err := Text(&buf, long); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "...") {
		t.Error("no truncation marker")
	}
}
