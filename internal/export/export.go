// Package export converts trace readouts into interchange formats: the
// Chrome trace-event JSON consumed by chrome://tracing and Perfetto (the
// trace viewers the paper's ecosystem uses [17, 37, 39]), CSV for ad-hoc
// analysis, and a human-readable text rendering modeled on the kernel's
// trace output.
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"btrace/internal/tracer"
	"btrace/internal/workload"
)

// chromeEvent is one entry in the Chrome trace-event "traceEvents" array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	PID  int            `json:"pid"` // core, so the viewer groups by core
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level Chrome trace JSON object.
type chromeFile struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// ChromeTrace writes es as Chrome trace-event JSON. Events render as
// instant events ("ph":"i") named by their category, grouped by core
// (pid) and thread (tid).
func ChromeTrace(w io.Writer, es []tracer.Entry) error {
	file := chromeFile{
		TraceEvents: make([]chromeEvent, 0, len(es)),
		Metadata: map[string]any{
			"tracer":      "btrace",
			"event-count": len(es),
		},
	}
	for i := range es {
		e := &es[i]
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: workload.Category(e.Category).Name(),
			Ph:   "i",
			TS:   float64(e.TS) / 1e3,
			PID:  int(e.Core),
			TID:  int(e.TID),
			Args: map[string]any{
				"stamp": e.Stamp,
				"level": e.Level,
				"bytes": e.WireSize(),
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// csvHeader is the column set shared by CSV and CSVCursor.
var csvHeader = []string{"stamp", "ts_ns", "core", "tid", "category", "level", "payload_bytes"}

// CSV writes es as comma-separated rows with a header.
func CSV(w io.Writer, es []tracer.Entry) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	if err := csvRows(cw, es); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// csvRows writes one row per entry.
func csvRows(cw *csv.Writer, es []tracer.Entry) error {
	for i := range es {
		e := &es[i]
		rec := []string{
			strconv.FormatUint(e.Stamp, 10),
			strconv.FormatUint(e.TS, 10),
			strconv.Itoa(int(e.Core)),
			strconv.FormatUint(uint64(e.TID), 10),
			workload.Category(e.Category).Name(),
			strconv.Itoa(int(e.Level)),
			strconv.Itoa(len(e.Payload)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// Text writes es in a human-readable, ftrace-output-like form:
//
//	[core] tid=NNN  12.345678s  category  level=N  stamp=NNN  payload...
func Text(w io.Writer, es []tracer.Entry) error {
	for i := range es {
		e := &es[i]
		payload := ""
		if len(e.Payload) > 0 {
			const maxShown = 32
			p := e.Payload
			trunc := ""
			if len(p) > maxShown {
				p, trunc = p[:maxShown], "..."
			}
			if printable(p) {
				payload = fmt.Sprintf("  %q%s", p, trunc)
			} else {
				payload = fmt.Sprintf("  %x%s", p, trunc)
			}
		}
		if _, err := fmt.Fprintf(w, "[%03d] tid=%-7d %12.6fs  %-18s level=%d stamp=%d%s\n",
			e.Core, e.TID, float64(e.TS)/1e9, workload.Category(e.Category).Name(),
			e.Level, e.Stamp, payload); err != nil {
			return err
		}
	}
	return nil
}

func printable(p []byte) bool {
	for _, b := range p {
		if b < 0x20 || b > 0x7e {
			return false
		}
	}
	return true
}
