package export

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"

	"btrace/internal/tracer"
)

func sampleEntries() []tracer.Entry {
	return []tracer.Entry{
		{Stamp: 1, TS: 10, Core: 0, TID: 1, Category: 3, Level: 1, Payload: []byte("hello")},
		{Stamp: 2, TS: 20, Core: 1, TID: 2, Category: 5, Level: 2, Payload: nil},
		{Stamp: 3, TS: 30, Core: 2, TID: 3, Category: 7, Level: 3, Payload: []byte{}},
		{Stamp: 4, TS: 40, Core: 3, TID: 0xFFFFFF, Category: 255, Level: 255, Payload: bytes.Repeat([]byte{0xAB}, tracer.MaxPayload)},
		{Stamp: 5, TS: 50, Core: 4, TID: 5, Category: 0, Level: 0, Payload: []byte{0}},
	}
}

func entriesEqual(a, b tracer.Entry) bool {
	return a.Stamp == b.Stamp && a.TS == b.TS && a.Core == b.Core && a.TID == b.TID &&
		a.Category == b.Category && a.Level == b.Level && string(a.Payload) == string(b.Payload)
}

// TestStreamRoundTrip: Encoder output decoded by Decoder reproduces every
// entry, including empty- and max-payload edges, and matches the batch
// encoder byte-for-byte.
func TestStreamRoundTrip(t *testing.T) {
	es := sampleEntries()

	var streamed bytes.Buffer
	enc := NewEncoder(&streamed)
	for i := range es {
		if err := enc.Encode(&es[i]); err != nil {
			t.Fatalf("Encode %d: %v", i, err)
		}
	}

	// Byte-for-byte identical to direct wire encoding.
	var direct bytes.Buffer
	buf := make([]byte, tracer.EventWireSize(tracer.MaxPayload))
	for i := range es {
		n, err := tracer.EncodeEvent(buf, &es[i])
		if err != nil {
			t.Fatal(err)
		}
		direct.Write(buf[:n])
	}
	if !bytes.Equal(streamed.Bytes(), direct.Bytes()) {
		t.Fatalf("streamed encoding differs from direct encoding (%d vs %d bytes)",
			streamed.Len(), direct.Len())
	}

	dec := NewDecoder(bytes.NewReader(streamed.Bytes()))
	var e tracer.Entry
	for i := range es {
		if err := dec.Next(&e); err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		// A nil payload encodes as length 0 and decodes as nil; an empty
		// non-nil payload also decodes as nil — compare by content.
		if !entriesEqual(e, es[i]) {
			t.Fatalf("entry %d: got %+v want %+v", i, e, es[i])
		}
	}
	if err := dec.Next(&e); err != io.EOF {
		t.Fatalf("after last entry: %v, want io.EOF", err)
	}
	if events, skipped := dec.Counts(); events != len(es) || skipped != 0 {
		t.Fatalf("Counts = (%d, %d), want (%d, 0)", events, skipped, len(es))
	}
}

func TestStreamEncodeBatchMatchesLoop(t *testing.T) {
	es := sampleEntries()
	var a, b bytes.Buffer
	if err := NewEncoder(&a).EncodeBatch(es); err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(&b)
	for i := range es {
		if err := enc.Encode(&es[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("EncodeBatch differs from per-entry Encode")
	}
}

func TestDecoderSkipsStructuralRecords(t *testing.T) {
	var buf bytes.Buffer
	rec := make([]byte, 64)
	n := tracer.EncodeBlockHeader(rec, 42)
	buf.Write(rec[:n])
	e0 := tracer.Entry{Stamp: 9, TS: 1, Payload: []byte("x")}
	n, err := tracer.EncodeEvent(rec, &e0)
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(rec[:n])
	n = tracer.EncodeDummy(rec, 16)
	buf.Write(rec[:n])
	n = tracer.EncodeSkip(rec, 43)
	buf.Write(rec[:n])

	dec := NewDecoder(bytes.NewReader(buf.Bytes()))
	var e tracer.Entry
	if err := dec.Next(&e); err != nil || e.Stamp != 9 {
		t.Fatalf("Next = (%+v, %v)", e, err)
	}
	if err := dec.Next(&e); err != io.EOF {
		t.Fatalf("end: %v, want io.EOF", err)
	}
	if events, skipped := dec.Counts(); events != 1 || skipped != 3 {
		t.Fatalf("Counts = (%d, %d), want (1, 3)", events, skipped)
	}
}

func TestDecoderTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	e0 := tracer.Entry{Stamp: 1, Payload: []byte("abcdefgh")}
	rec := make([]byte, 64)
	n, _ := tracer.EncodeEvent(rec, &e0)
	buf.Write(rec[:n])
	wire := buf.Bytes()

	for cut := 1; cut < len(wire); cut++ {
		dec := NewDecoder(bytes.NewReader(wire[:cut]))
		var e tracer.Entry
		if err := dec.Next(&e); err == nil {
			t.Fatalf("cut at %d decoded successfully", cut)
		}
	}
}

func TestDecoderRejectsOversizedRecord(t *testing.T) {
	// A record claiming more than the maximum event size must not drive a
	// giant allocation.
	w := make([]byte, 8)
	// kind=KindEvent, size=1 GiB (aligned).
	size := uint64(1 << 30)
	word := uint64(tracer.KindEvent)<<56 | size
	for i := 0; i < 8; i++ {
		w[i] = byte(word >> (8 * i))
	}
	dec := NewDecoder(bytes.NewReader(w))
	var e tracer.Entry
	err := dec.Next(&e)
	if err == nil || !errors.Is(err, tracer.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

type sliceCursor struct {
	es   []tracer.Entry
	idx  int
	miss uint64
}

func (c *sliceCursor) Next(batch []tracer.Entry) (int, uint64, error) {
	n := copy(batch, c.es[c.idx:])
	c.idx += n
	m := c.miss
	c.miss = 0
	return n, m, nil
}

func (c *sliceCursor) Close() error { return nil }

func TestEncoderFromCursor(t *testing.T) {
	es := sampleEntries()
	var fromCursor, fromBatch bytes.Buffer
	events, missed, err := NewEncoder(&fromCursor).FromCursor(
		&sliceCursor{es: es, miss: 7}, make([]tracer.Entry, 2))
	if err != nil {
		t.Fatal(err)
	}
	if events != len(es) || missed != 7 {
		t.Fatalf("FromCursor = (%d, %d), want (%d, 7)", events, missed, len(es))
	}
	if err := NewEncoder(&fromBatch).EncodeBatch(es); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromCursor.Bytes(), fromBatch.Bytes()) {
		t.Fatal("FromCursor output differs from EncodeBatch")
	}
}

func TestCursorExportersMatchSliceExporters(t *testing.T) {
	es := sampleEntries()
	batch := make([]tracer.Entry, 2)

	var sliceCSV, curCSV bytes.Buffer
	if err := CSV(&sliceCSV, es); err != nil {
		t.Fatal(err)
	}
	if _, _, err := CSVCursor(&curCSV, &sliceCursor{es: es}, batch); err != nil {
		t.Fatal(err)
	}
	if sliceCSV.String() != curCSV.String() {
		t.Fatalf("CSVCursor output differs:\n%s\nvs\n%s", curCSV.String(), sliceCSV.String())
	}

	var sliceTxt, curTxt bytes.Buffer
	if err := Text(&sliceTxt, es); err != nil {
		t.Fatal(err)
	}
	if _, _, err := TextCursor(&curTxt, &sliceCursor{es: es}, batch); err != nil {
		t.Fatal(err)
	}
	if sliceTxt.String() != curTxt.String() {
		t.Fatal("TextCursor output differs from Text")
	}

	var chrome bytes.Buffer
	events, _, err := ChromeTraceCursor(&chrome, &sliceCursor{es: es}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if events != len(es) {
		t.Fatalf("ChromeTraceCursor wrote %d events, want %d", events, len(es))
	}
	out := chrome.String()
	if !strings.HasPrefix(out, `{"traceEvents":[`) || !strings.Contains(out, `"event-count":5`) {
		t.Fatalf("unexpected Chrome JSON: %s", out)
	}
	// Must be valid JSON even when the batch boundary falls mid-array, and
	// carry the same number of array elements as the slice encoder.
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("ChromeTraceCursor emitted invalid JSON: %v\n%s", err, out)
	}
	if len(doc.TraceEvents) != len(es) {
		t.Fatalf("Chrome JSON has %d events, want %d", len(doc.TraceEvents), len(es))
	}
}

// FuzzStreamRoundTrip: arbitrary entries survive encode→decode
// byte-for-byte through the streaming pair.
func FuzzStreamRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint8(3), uint32(4), uint8(5), uint8(6), []byte("payload"))
	f.Add(uint64(0), uint64(0), uint8(0), uint32(0), uint8(0), uint8(0), []byte{})
	f.Add(^uint64(0), ^uint64(0), uint8(255), uint32(0xFFFFFF), uint8(255), uint8(255),
		bytes.Repeat([]byte{1}, 1024))
	f.Fuzz(func(t *testing.T, stamp, ts uint64, core uint8, tid uint32, cat, level uint8, payload []byte) {
		if len(payload) > tracer.MaxPayload {
			payload = payload[:tracer.MaxPayload]
		}
		in := tracer.Entry{
			Stamp: stamp, TS: ts, Core: core, TID: tid & 0xFFFFFF,
			Category: cat, Level: level, Payload: payload,
		}
		var wire bytes.Buffer
		if err := NewEncoder(&wire).Encode(&in); err != nil {
			t.Fatalf("Encode: %v", err)
		}
		dec := NewDecoder(bytes.NewReader(wire.Bytes()))
		var out tracer.Entry
		if err := dec.Next(&out); err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !entriesEqual(in, out) {
			t.Fatalf("round trip mismatch: in %+v out %+v", in, out)
		}
		// Re-encoding the decoded entry must be byte-identical.
		var wire2 bytes.Buffer
		if err := NewEncoder(&wire2).Encode(&out); err != nil {
			t.Fatalf("re-Encode: %v", err)
		}
		if !bytes.Equal(wire.Bytes(), wire2.Bytes()) {
			t.Fatal("re-encoded bytes differ")
		}
		if err := dec.Next(&out); err != io.EOF {
			t.Fatalf("trailing: %v", err)
		}
	})
}

// FuzzDecoderArbitraryBytes: the decoder must terminate with a clean
// error (never panic, never allocate unboundedly) on arbitrary input.
func FuzzDecoderArbitraryBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	es := sampleEntries()
	var wire bytes.Buffer
	_ = NewEncoder(&wire).EncodeBatch(es[:2])
	f.Add(wire.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		var e tracer.Entry
		for i := 0; i < 1<<16; i++ {
			if err := dec.Next(&e); err != nil {
				return // any terminating error is acceptable
			}
		}
		t.Fatal("decoder did not terminate")
	})
}
