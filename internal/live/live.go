// Package live is the live-tail subsystem: a Hub fans admitted ingest
// events out to per-subscriber cursors with bounded ring buffers, so
// streaming consumers (the SSE GET /live endpoint on btrace-serve)
// observe the trace as it happens instead of querying sealed segments
// after the fact — the online-consumer scenario WOOTdroid argues
// whole-system tracing must serve (see PAPERS.md).
//
// The hub hangs off the overload gate's post-admission seam
// (overload.Config.Admitted): both the single-store ingest pipeline and
// the cluster distributor filter every batch through a Gate, so one
// hook covers both pipelines, and live subscribers see exactly the
// events the gate admitted — never events that were shed, sampled out
// or throttled.
//
// Delivery is lossy by design, and the loss is accounted, never
// silent: each subscriber owns a bounded ring; when the ring is full
// the oldest undelivered event is overwritten and the subscriber's
// missed count increments, reusing the tracer.Cursor missed semantics.
// The accounting identity
//
//	delivered + missed == matched
//
// (matched = admitted events matching the subscriber's filter) holds
// exactly once the subscriber's buffer is drained. A subscriber that
// stops reading long enough to accumulate Config.EvictAfterMissed
// missed events is evicted: its buffered events convert to missed, and
// its next read returns ErrEvicted. Ingest never blocks on a slow
// subscriber — the cost of falling behind lands on the subscriber that
// fell behind.
package live

import (
	"errors"
	"sync"
	"sync/atomic"

	"btrace/internal/tracer"
)

// Errors returned by the hub.
var (
	// ErrEvicted reports a subscriber the hub dropped for falling more
	// than Config.EvictAfterMissed events behind.
	ErrEvicted = errors.New("live: subscriber evicted (too far behind)")
	// ErrSubscribers reports a Subscribe refused because the hub is at
	// Config.MaxSubscribers.
	ErrSubscribers = errors.New("live: subscriber limit reached")
)

// Config shapes a Hub. Zero values select the documented defaults.
type Config struct {
	// BufferEvents is each subscriber's ring capacity in events
	// (default 4096).
	BufferEvents int
	// MaxSubscribers bounds concurrent subscriptions; Subscribe beyond
	// it returns ErrSubscribers (default 64).
	MaxSubscribers int
	// EvictAfterMissed is the cumulative missed-event count at which a
	// subscriber is evicted instead of accumulating further loss
	// (default 65536). Eviction converts the subscriber's buffered
	// events to missed, so the accounting identity survives it.
	EvictAfterMissed uint64
}

func (c Config) withDefaults() Config {
	if c.BufferEvents <= 0 {
		c.BufferEvents = 4096
	}
	if c.MaxSubscribers <= 0 {
		c.MaxSubscribers = 64
	}
	if c.EvictAfterMissed == 0 {
		c.EvictAfterMissed = 65536
	}
	return c
}

// Hub is the fan-out point. Publish may be called concurrently (the
// cluster distributor admits batches from many request goroutines);
// subscribers attach and detach freely.
type Hub struct {
	cfg Config
	obs *hubObs

	// n mirrors len(subs) for the idle fast path: with no subscribers
	// Publish must cost two atomics and no locks, so an idle hub keeps
	// the admit path's 0 allocs/op contract.
	n atomic.Int64

	mu   sync.Mutex
	subs map[*Sub]struct{}
}

// NewHub creates a Hub and registers its obs series.
func NewHub(cfg Config) *Hub {
	h := &Hub{
		cfg:  cfg.withDefaults(),
		subs: make(map[*Sub]struct{}),
		obs:  newHubObs(),
	}
	h.registerObs()
	return h
}

// Publish offers one admitted batch to every subscriber. The entries
// are borrowed (overload.Config.Admitted contract): anything retained
// is deep-copied into the subscriber's ring here. Never blocks on a
// subscriber; a full ring overwrites oldest and counts missed. Safe
// for concurrent use, and safe on a nil Hub (no-op).
func (h *Hub) Publish(tenant string, es []tracer.Entry) {
	if h == nil || len(es) == 0 {
		return
	}
	h.obs.published.Add(uint64(len(es)))
	if h.n.Load() == 0 {
		return
	}
	h.mu.Lock()
	for sub := range h.subs {
		matched, missed := sub.offer(tenant, es)
		if matched > 0 {
			h.obs.matched.Add(uint64(matched))
		}
		if missed > 0 {
			h.obs.missed.Add(missed)
		}
		if sub.evictable() {
			sub.evict()
			delete(h.subs, sub)
			h.n.Add(-1)
			h.obs.evictedSubs.Add(1)
			h.obs.subscribers.Set(int64(len(h.subs)))
		}
	}
	h.mu.Unlock()
}

// Subscribe attaches a new subscriber with the given filter. The
// returned Sub implements tracer.Cursor; the caller must Close it.
func (h *Hub) Subscribe(f Filter) (*Sub, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.subs) >= h.cfg.MaxSubscribers {
		h.obs.rejected.Add(1)
		return nil, ErrSubscribers
	}
	sub := &Sub{
		hub:    h,
		filter: f,
		ring:   make([]tracer.Entry, h.cfg.BufferEvents),
		notify: make(chan struct{}, 1),
	}
	h.subs[sub] = struct{}{}
	h.n.Add(1)
	h.obs.subscribed.Add(1)
	h.obs.subscribers.Set(int64(len(h.subs)))
	return sub, nil
}

// Subscribers returns the number of attached subscribers.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// detach removes sub on Close; idempotent with eviction (which removed
// it already).
func (h *Hub) detach(sub *Sub) {
	h.mu.Lock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		h.n.Add(-1)
		h.obs.subscribers.Set(int64(len(h.subs)))
	}
	h.mu.Unlock()
}

// SubStats is one subscriber's accounting snapshot. Once Buffered is
// zero (drained), Delivered + Missed == Matched exactly.
type SubStats struct {
	// Matched counts admitted events that matched the filter.
	Matched uint64
	// Delivered counts events handed out through Next.
	Delivered uint64
	// Missed counts matched events lost to ring overwrite or eviction
	// (reported incrementally through Next's missed return).
	Missed uint64
	// Buffered is the current ring occupancy.
	Buffered int
	// Evicted reports whether the hub dropped this subscriber.
	Evicted bool
}

// Sub is one subscription: a tracer.Cursor over the live stream. Next
// and Close follow the Cursor contract (single consumer goroutine);
// the hub's Publish side is synchronized internally.
type Sub struct {
	hub    *Hub
	filter Filter

	mu   sync.Mutex
	ring []tracer.Entry // fixed capacity, overwrite-oldest
	head int            // index of oldest buffered entry
	cnt  int            // buffered entries

	matched   uint64
	delivered uint64
	missed    uint64 // total missed (overwrites + eviction)
	pending   uint64 // missed not yet reported through Next
	evicted   bool
	closed    bool

	notify chan struct{}
}

// offer pushes the filter-matching subset of es into the ring,
// overwriting oldest on overflow. Returns how many matched and how
// many were newly missed. Called with the hub lock held (publish
// order), takes the sub lock for the ring.
func (s *Sub) offer(tenant string, es []tracer.Entry) (matched int, missed uint64) {
	s.mu.Lock()
	if s.closed || s.evicted {
		s.mu.Unlock()
		return 0, 0
	}
	before := s.pending
	for i := range es {
		e := &es[i]
		if !s.filter.Match(tenant, e) {
			continue
		}
		matched++
		if s.cnt == len(s.ring) {
			// Full: the oldest undelivered event is the one to give up —
			// the subscriber is behind, and newest-first is what a live
			// tail wants to stay current.
			s.head = (s.head + 1) % len(s.ring)
			s.cnt--
			s.pending++
			s.missed++
		}
		slot := &s.ring[(s.head+s.cnt)%len(s.ring)]
		*slot = *e
		if len(e.Payload) > 0 {
			// Deep-copy the payload: the published slice may alias a
			// decode arena that is reused after Publish returns.
			slot.Payload = append([]byte(nil), e.Payload...)
		} else {
			slot.Payload = nil
		}
		s.cnt++
	}
	s.matched += uint64(matched)
	missed = s.pending - before
	wake := matched > 0
	s.mu.Unlock()
	if wake {
		select {
		case s.notify <- struct{}{}:
		default:
		}
	}
	return matched, missed
}

// evictable reports whether the subscriber crossed the eviction
// threshold. Called with the hub lock held.
func (s *Sub) evictable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed && !s.evicted && s.missed >= s.hub.cfg.EvictAfterMissed
}

// evict converts the buffered events to missed and marks the sub; its
// next Next drains the missed count and returns ErrEvicted. Called
// with the hub lock held.
func (s *Sub) evict() {
	s.mu.Lock()
	s.pending += uint64(s.cnt)
	s.missed += uint64(s.cnt)
	s.hub.obs.missed.Add(uint64(s.cnt))
	s.cnt, s.head = 0, 0
	s.evicted = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next implements tracer.Cursor: it fills batch with buffered events
// (oldest first), reports the missed count accumulated since the last
// call, and returns ErrEvicted once the hub has dropped the
// subscriber (after handing over the final missed tally). The entries
// handed out are owned copies, but per the Cursor contract callers
// must treat them as valid only until the next call.
func (s *Sub) Next(batch []tracer.Entry) (int, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0, tracer.ErrClosed
	}
	missed := s.pending
	s.pending = 0
	if len(batch) == 0 {
		// Zero-length reads must not lose the missed tally.
		s.pending = missed
		return 0, 0, nil
	}
	n := 0
	for n < len(batch) && s.cnt > 0 {
		batch[n] = s.ring[s.head]
		s.ring[s.head] = tracer.Entry{} // release the payload reference
		s.head = (s.head + 1) % len(s.ring)
		s.cnt--
		n++
	}
	s.delivered += uint64(n)
	if n > 0 {
		s.hub.obs.delivered.Add(uint64(n))
	}
	if s.evicted && s.cnt == 0 {
		return n, missed, ErrEvicted
	}
	return n, missed, nil
}

// Close implements tracer.Cursor, detaching the subscriber from the
// hub. Safe to call more than once.
func (s *Sub) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cnt, s.head = 0, 0
	s.mu.Unlock()
	s.hub.detach(s)
	return nil
}

// Notify returns a channel that receives a token when new events (or
// an eviction) may be waiting: the SSE handler parks on it between
// drains instead of polling.
func (s *Sub) Notify() <-chan struct{} { return s.notify }

// Stats returns the subscriber's accounting snapshot.
func (s *Sub) Stats() SubStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SubStats{
		Matched:   s.matched,
		Delivered: s.delivered,
		Missed:    s.missed,
		Buffered:  s.cnt,
		Evicted:   s.evicted,
	}
}

var _ tracer.Cursor = (*Sub)(nil)
