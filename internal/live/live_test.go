package live

import (
	"bytes"
	"errors"
	"fmt"
	"net/url"
	"sync"
	"testing"

	"btrace/internal/tracer"
)

// mkEntries builds n sequential entries starting at stamp lo, all on
// the given tid, with a small distinguishing payload.
func mkEntries(lo uint64, n int, tid uint32) []tracer.Entry {
	es := make([]tracer.Entry, n)
	for i := range es {
		es[i] = tracer.Entry{
			Stamp:    lo + uint64(i),
			TS:       (lo + uint64(i)) * 10,
			Core:     uint8(i % 4),
			TID:      tid,
			Category: uint8(1 + i%3),
			Level:    1,
			Payload:  []byte{byte(lo + uint64(i)), 0xAB},
		}
	}
	return es
}

// drain reads sub to exhaustion, returning the delivered entries and
// the total missed reported along the way.
func drain(t *testing.T, sub *Sub) ([]tracer.Entry, uint64) {
	t.Helper()
	var out []tracer.Entry
	var missed uint64
	batch := make([]tracer.Entry, 7) // odd size to exercise ring wrap
	for {
		n, m, err := sub.Next(batch)
		missed += m
		out = tracer.CloneEntries(out, batch[:n])
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
		if n == 0 && m == 0 {
			return out, missed
		}
	}
}

func TestHubFanoutDeliversMatching(t *testing.T) {
	h := NewHub(Config{BufferEvents: 64})
	all, err := h.Subscribe(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	defer all.Close()
	cat2, err := h.Subscribe(Filter{Categories: []uint8{2}})
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()

	es := mkEntries(1, 30, 7)
	h.Publish("", es)

	got, missed := drain(t, all)
	if len(got) != 30 || missed != 0 {
		t.Fatalf("all-filter sub got %d events, %d missed; want 30, 0", len(got), missed)
	}
	for i, e := range got {
		if e.Stamp != uint64(1+i) {
			t.Fatalf("event %d has stamp %d, want %d", i, e.Stamp, 1+i)
		}
	}

	got2, _ := drain(t, cat2)
	want2 := 0
	for i := range es {
		if es[i].Category == 2 {
			want2++
		}
	}
	if len(got2) != want2 {
		t.Fatalf("category filter delivered %d, want %d", len(got2), want2)
	}
	for _, e := range got2 {
		if e.Category != 2 {
			t.Fatalf("category filter leaked category %d", e.Category)
		}
	}
}

// Published payloads may live in a reusable decode arena; the hub must
// deep-copy at offer time.
func TestHubCopiesPayloads(t *testing.T) {
	h := NewHub(Config{})
	sub, err := h.Subscribe(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	payload := []byte{1, 2, 3, 4}
	h.Publish("", []tracer.Entry{{Stamp: 1, Payload: payload}})
	payload[0] = 0xFF // arena reuse after Publish returned

	got, _ := drain(t, sub)
	if len(got) != 1 {
		t.Fatalf("delivered %d events, want 1", len(got))
	}
	if !bytes.Equal(got[0].Payload, []byte{1, 2, 3, 4}) {
		t.Fatalf("payload aliased the publisher's buffer: %v", got[0].Payload)
	}
}

func TestHubTenantScoping(t *testing.T) {
	h := NewHub(Config{})
	alpha, err := h.Subscribe(Filter{Tenant: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	defer alpha.Close()

	h.Publish("alpha", mkEntries(1, 5, 1))
	h.Publish("beta", mkEntries(100, 5, 1))
	h.Publish("alpha", mkEntries(6, 5, 1))

	got, _ := drain(t, alpha)
	if len(got) != 10 {
		t.Fatalf("tenant-scoped sub got %d events, want 10", len(got))
	}
	for _, e := range got {
		if e.Stamp >= 100 {
			t.Fatalf("tenant-scoped sub saw beta's stamp %d", e.Stamp)
		}
	}
}

// The satellite contract: a subscriber that stops reading saturates
// missed and is evicted without blocking ingest or other subscribers,
// and the accounting identity delivered + missed == matched holds for
// every subscriber, evicted or not.
func TestHubSlowSubscriberEvicted(t *testing.T) {
	h := NewHub(Config{BufferEvents: 16, EvictAfterMissed: 32})
	slow, err := h.Subscribe(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := h.Subscribe(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()

	const total = 200
	var fastGot []tracer.Entry
	var fastMissed uint64
	batch := make([]tracer.Entry, 16)
	for lo := uint64(1); lo <= total; lo += 10 {
		h.Publish("", mkEntries(lo, 10, 3))
		// The fast subscriber keeps up; the slow one never reads.
		for {
			n, m, err := fast.Next(batch)
			fastMissed += m
			fastGot = tracer.CloneEntries(fastGot, batch[:n])
			if err != nil {
				t.Fatalf("fast sub: %v", err)
			}
			if n == 0 {
				break
			}
		}
	}

	// The fast subscriber was never penalized for its peer.
	if len(fastGot) != total || fastMissed != 0 {
		t.Fatalf("fast sub delivered %d missed %d; want %d, 0", len(fastGot), fastMissed, total)
	}
	for i, e := range fastGot {
		if e.Stamp != uint64(1+i) {
			t.Fatalf("fast sub out of order at %d: stamp %d", i, e.Stamp)
		}
	}

	// The slow subscriber was evicted and detached from the hub.
	if h.Subscribers() != 1 {
		t.Fatalf("hub has %d subscribers, want 1 after eviction", h.Subscribers())
	}
	st := slow.Stats()
	if !st.Evicted {
		t.Fatalf("slow subscriber not marked evicted: %+v", st)
	}
	n, missed, err := slow.Next(batch)
	if !errors.Is(err, ErrEvicted) {
		t.Fatalf("slow sub Next = (%d, %d, %v), want ErrEvicted", n, missed, err)
	}
	// Identity: everything matched while attached was either delivered
	// or accounted missed (delivered is 0 here; the final missed tally
	// came through the ErrEvicted read). Events published after the
	// eviction are no longer the subscriber's — matched stops with it.
	st = slow.Stats()
	if st.Delivered+st.Missed != st.Matched {
		t.Fatalf("identity broken for evicted sub: delivered %d + missed %d != matched %d",
			st.Delivered, st.Missed, st.Matched)
	}
	if st.Matched == 0 || st.Matched > total {
		t.Fatalf("evicted sub matched %d of %d published", st.Matched, total)
	}
	if uint64(n)+missed == 0 {
		t.Fatal("eviction reported no missed count")
	}
	slow.Close()
}

// A subscriber that reads too slowly (but is not evicted) sees exact
// overwrite accounting through the missed return.
func TestHubMissedAccounting(t *testing.T) {
	h := NewHub(Config{BufferEvents: 16, EvictAfterMissed: 1 << 20})
	sub, err := h.Subscribe(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	h.Publish("", mkEntries(1, 100, 1)) // 100 into a 16-ring: 84 missed
	got, missed := drain(t, sub)
	if len(got) != 16 || missed != 84 {
		t.Fatalf("delivered %d missed %d; want 16, 84", len(got), missed)
	}
	// The survivors are the newest 16, still in order.
	for i, e := range got {
		if e.Stamp != uint64(85+i) {
			t.Fatalf("survivor %d has stamp %d, want %d", i, e.Stamp, 85+i)
		}
	}
	st := sub.Stats()
	if st.Delivered+st.Missed != st.Matched {
		t.Fatalf("identity broken: %+v", st)
	}
}

func TestHubSubscriberCap(t *testing.T) {
	h := NewHub(Config{MaxSubscribers: 2})
	a, err := h.Subscribe(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := h.Subscribe(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Subscribe(Filter{}); !errors.Is(err, ErrSubscribers) {
		t.Fatalf("third subscribe: %v, want ErrSubscribers", err)
	}
	// Closing frees the slot.
	b.Close()
	c, err := h.Subscribe(Filter{})
	if err != nil {
		t.Fatalf("subscribe after close: %v", err)
	}
	c.Close()
}

func TestSubCloseSemantics(t *testing.T) {
	h := NewHub(Config{})
	sub, err := h.Subscribe(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if h.Subscribers() != 0 {
		t.Fatalf("%d subscribers after close", h.Subscribers())
	}
	if _, _, err := sub.Next(make([]tracer.Entry, 4)); !errors.Is(err, tracer.ErrClosed) {
		t.Fatalf("Next after Close: %v, want ErrClosed", err)
	}
	// Publishing to a hub whose only subscriber closed is a no-op.
	h.Publish("", mkEntries(1, 4, 1))
}

// Concurrent publishers against a draining subscriber: the identity
// must hold exactly once everything quiesces (run under -race in CI).
func TestHubConcurrentPublish(t *testing.T) {
	h := NewHub(Config{BufferEvents: 128, EvictAfterMissed: 1 << 30})
	sub, err := h.Subscribe(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const publishers = 4
	const batches = 50
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				h.Publish("", mkEntries(uint64(p*10000+i*10+1), 10, uint32(p)))
			}
		}(p)
	}
	stop := make(chan struct{})
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		batch := make([]tracer.Entry, 64)
		final := false
		for {
			n, m, err := sub.Next(batch)
			if err != nil {
				t.Errorf("sub.Next: %v", err)
				return
			}
			if n == 0 && m == 0 {
				if final {
					return
				}
				select {
				case <-sub.Notify():
				case <-stop:
					final = true // publishers done: one last exhaustive drain
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-drained

	st := sub.Stats()
	if st.Delivered+st.Missed != st.Matched || st.Matched != publishers*batches*10 {
		t.Fatalf("identity broken under concurrency: %+v", st)
	}
}

func TestFilterMatch(t *testing.T) {
	e := tracer.Entry{Stamp: 5, TS: 100, Core: 2, TID: 42, Category: 3, Level: 1}
	cases := []struct {
		name   string
		f      Filter
		tenant string
		want   bool
	}{
		{"empty matches", Filter{}, "anyone", true},
		{"tenant match", Filter{Tenant: "a"}, "a", true},
		{"tenant mismatch", Filter{Tenant: "a"}, "b", false},
		{"ts window in", Filter{MinTS: 100, MaxTS: 100}, "", true},
		{"ts below", Filter{MinTS: 101}, "", false},
		{"ts above", Filter{MaxTS: 99}, "", false},
		{"core in", Filter{Cores: []uint8{1, 2}}, "", true},
		{"core out", Filter{Cores: []uint8{1}}, "", false},
		{"category in", Filter{Categories: []uint8{3}}, "", true},
		{"category out", Filter{Categories: []uint8{4}}, "", false},
		{"tid in", Filter{TIDs: []uint32{41, 42}}, "", true},
		{"tid out", Filter{TIDs: []uint32{41}}, "", false},
	}
	for _, c := range cases {
		if got := c.f.Match(c.tenant, &e); got != c.want {
			t.Errorf("%s: Match = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestParseQuery(t *testing.T) {
	v, err := url.ParseQuery("min_ts=10&max_ts=20&cores=0,1&categories=2,+3&tids=7,8,9")
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseQuery(v)
	if err != nil {
		t.Fatal(err)
	}
	if f.MinTS != 10 || f.MaxTS != 20 {
		t.Fatalf("ts bounds %d..%d", f.MinTS, f.MaxTS)
	}
	if len(f.Cores) != 2 || len(f.Categories) != 2 || len(f.TIDs) != 3 {
		t.Fatalf("lists parsed wrong: %+v", f)
	}

	for _, bad := range []string{
		"min_ts=banana",
		"max_ts=-1",
		"cores=256",
		"categories=1,,2",
		"tids=4294967296",
		"min_ts=5&max_ts=4",
	} {
		v, err := url.ParseQuery(bad)
		if err != nil {
			continue
		}
		if _, err := ParseQuery(v); err == nil {
			t.Errorf("ParseQuery(%q) accepted bad input", bad)
		}
	}
}

func TestSSERoundTrip(t *testing.T) {
	var buf bytes.Buffer
	events := mkEntries(10, 3, 99)
	events[1].Payload = nil // exercise the omitempty path
	for i := range events {
		if err := EncodeFrame(&buf, &events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := EncodeMissed(&buf, 17); err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(&buf, ": keepalive\n\n")
	if err := EncodeEvicted(&buf, 42); err != nil {
		t.Fatal(err)
	}

	sr := NewStreamReader(&buf)
	for i := range events {
		ev, data, err := sr.Next()
		if err != nil || ev != EventTrace {
			t.Fatalf("frame %d: event %q err %v", i, ev, err)
		}
		got, err := DecodeFrame(data)
		if err != nil {
			t.Fatal(err)
		}
		want := events[i]
		if got.Stamp != want.Stamp || got.TS != want.TS || got.Core != want.Core ||
			got.TID != want.TID || got.Category != want.Category || got.Level != want.Level ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d round-trip: got %+v want %+v", i, got, want)
		}
	}
	ev, data, err := sr.Next()
	if err != nil || ev != EventMissed {
		t.Fatalf("missed event: %q, %v", ev, err)
	}
	if n, err := ParseCount(data); err != nil || n != 17 {
		t.Fatalf("missed count %d, %v", n, err)
	}
	ev, data, err = sr.Next()
	if err != nil || ev != EventEvicted {
		t.Fatalf("evicted event: %q, %v (keepalive not skipped?)", ev, err)
	}
	if n, err := ParseCount(data); err != nil || n != 42 {
		t.Fatalf("evicted count %d, %v", n, err)
	}
}
