package live

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"btrace/internal/tracer"
)

// Server-Sent Events framing for GET /live. Three event types flow on
// the stream:
//
//	event: trace    data: one JSON-encoded trace event (Frame)
//	event: missed   data: events lost to ring overwrite since last frame
//	event: evicted  data: total missed count; the stream ends after it
//
// plus ": keepalive" comment lines during idle stretches. The codec
// lives here (not in the handler) so btrace-vulture's client and the
// fuzzers exercise the exact bytes the server emits.

// SSE event names on the /live stream.
const (
	EventTrace   = "trace"
	EventMissed  = "missed"
	EventEvicted = "evicted"
)

// Frame is the JSON shape of one trace event on the wire. Payload
// rides as standard-library base64 ([]byte JSON encoding).
type Frame struct {
	Stamp    uint64 `json:"stamp"`
	TS       uint64 `json:"ts"`
	Core     uint8  `json:"core"`
	TID      uint32 `json:"tid"`
	Category uint8  `json:"category"`
	Level    uint8  `json:"level"`
	Payload  []byte `json:"payload,omitempty"`
}

// EncodeFrame writes e as one SSE trace event.
func EncodeFrame(w io.Writer, e *tracer.Entry) error {
	data, err := json.Marshal(Frame{
		Stamp:    e.Stamp,
		TS:       e.TS,
		Core:     e.Core,
		TID:      e.TID,
		Category: e.Category,
		Level:    e.Level,
		Payload:  e.Payload,
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", EventTrace, data)
	return err
}

// DecodeFrame parses the data payload of one trace event back into an
// Entry. A zero-length payload decodes as nil, matching the encoder's
// omitempty.
func DecodeFrame(data []byte) (tracer.Entry, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f Frame
	if err := dec.Decode(&f); err != nil {
		return tracer.Entry{}, fmt.Errorf("live: bad trace frame: %w", err)
	}
	e := tracer.Entry{
		Stamp:    f.Stamp,
		TS:       f.TS,
		Core:     f.Core,
		TID:      f.TID,
		Category: f.Category,
		Level:    f.Level,
	}
	if len(f.Payload) > 0 {
		e.Payload = f.Payload
	}
	return e, nil
}

// EncodeMissed writes a missed event carrying the count of events lost
// to ring overwrite since the previous frame.
func EncodeMissed(w io.Writer, n uint64) error {
	_, err := fmt.Fprintf(w, "event: %s\ndata: %d\n\n", EventMissed, n)
	return err
}

// EncodeEvicted writes the stream-ending evicted event with the
// subscriber's total missed count.
func EncodeEvicted(w io.Writer, totalMissed uint64) error {
	_, err := fmt.Fprintf(w, "event: %s\ndata: %d\n\n", EventEvicted, totalMissed)
	return err
}

// ParseCount parses the data payload of a missed/evicted event.
func ParseCount(data []byte) (uint64, error) {
	n, err := strconv.ParseUint(string(bytes.TrimSpace(data)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("live: bad count %q", data)
	}
	return n, nil
}

// maxSSELine bounds one SSE line on the client side: a trace frame is
// a header's worth of JSON plus a base64 payload (≤ 64 KiB raw), so
// 256 KiB is generous and still refuses unbounded lines.
const maxSSELine = 256 << 10

// StreamReader is a minimal SSE client for the /live stream: it
// yields (event, data) pairs and ignores comment/keepalive lines.
type StreamReader struct {
	r *bufio.Reader
}

// NewStreamReader wraps r (typically the /live response body).
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{r: bufio.NewReaderSize(r, 16<<10)}
}

// Next returns the next event on the stream. io.EOF reports a cleanly
// ended stream.
func (sr *StreamReader) Next() (event string, data []byte, err error) {
	event = ""
	data = nil
	for {
		line, err := sr.readLine()
		if err != nil {
			if err == io.EOF && (event != "" || data != nil) {
				// Stream cut mid-event: surface it as unexpected.
				return "", nil, io.ErrUnexpectedEOF
			}
			return "", nil, err
		}
		switch {
		case len(line) == 0:
			// Blank line dispatches the accumulated event.
			if event == "" && data == nil {
				continue // stray separator
			}
			return event, data, nil
		case line[0] == ':':
			continue // comment / keepalive
		case bytes.HasPrefix(line, []byte("event:")):
			event = string(bytes.TrimSpace(line[len("event:"):]))
		case bytes.HasPrefix(line, []byte("data:")):
			chunk := bytes.TrimPrefix(line[len("data:"):], []byte(" "))
			if data == nil {
				data = append([]byte(nil), chunk...)
			} else {
				// Multi-line data concatenates with newlines per the SSE
				// spec; our encoder never emits it but a client must not
				// corrupt it.
				data = append(append(data, '\n'), chunk...)
			}
		default:
			// Unknown field: ignored, per the SSE spec.
		}
	}
}

// readLine reads one \n-terminated line, stripping a trailing \r, and
// refusing lines beyond maxSSELine.
func (sr *StreamReader) readLine() ([]byte, error) {
	var buf []byte
	for {
		chunk, err := sr.r.ReadSlice('\n')
		buf = append(buf, chunk...)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if len(buf) > maxSSELine {
				return nil, fmt.Errorf("live: SSE line exceeds %d bytes", maxSSELine)
			}
			continue
		}
		if err == io.EOF && len(buf) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	buf = bytes.TrimSuffix(buf, []byte("\n"))
	buf = bytes.TrimSuffix(buf, []byte("\r"))
	return buf, nil
}
