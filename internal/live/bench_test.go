package live

import (
	"fmt"
	"testing"

	"btrace/internal/tracer"
)

// BenchmarkLiveFanout measures the hub's publish path: the idle case
// (hub attached to the gate but no subscribers — this must stay at
// 0 allocs/op, it is the standing cost every admitted batch pays) and
// fan-out to 1/16/256 subscribers, reported as events/s. Subscribers
// do not drain: the steady state under benchmark load is the
// overwrite path, which is also the most work the publish side ever
// does per event.
func BenchmarkLiveFanout(b *testing.B) {
	const batchSize = 256
	batch := make([]tracer.Entry, batchSize)
	payload := make([]byte, 64)
	for i := range batch {
		batch[i] = tracer.Entry{
			Stamp: uint64(i + 1), TS: uint64(i) * 100, Core: uint8(i % 8),
			TID: uint32(100 + i%16), Category: uint8(1 + i%4), Level: 1,
			Payload: payload,
		}
	}

	b.Run("idle", func(b *testing.B) {
		h := NewHub(Config{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Publish("default", batch)
		}
		b.StopTimer()
		reportRate(b, batchSize)
	})

	for _, subs := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			h := NewHub(Config{MaxSubscribers: subs, EvictAfterMissed: ^uint64(0)})
			for i := 0; i < subs; i++ {
				sub, err := h.Subscribe(Filter{})
				if err != nil {
					b.Fatal(err)
				}
				defer sub.Close()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Publish("default", batch)
			}
			b.StopTimer()
			reportRate(b, batchSize)
		})
	}
}

// reportRate converts the run into an events/s metric (benchdiff gates
// "/s" metrics as rates: drops fail, growth passes).
func reportRate(b *testing.B, perOp int) {
	if b.Elapsed() <= 0 {
		return
	}
	b.ReportMetric(float64(b.N*perOp)/b.Elapsed().Seconds(), "events/s")
}
