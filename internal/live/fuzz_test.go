package live

import (
	"bytes"
	"net/url"
	"testing"

	"btrace/internal/tracer"
)

// FuzzParseQuery throws arbitrary query strings at the /live parameter
// parser: it must never panic, and every accepted filter must satisfy
// its own invariants (bounded lists, ordered time window).
func FuzzParseQuery(f *testing.F) {
	f.Add("min_ts=10&max_ts=20&cores=0,1&categories=2,3&tids=7,8,9")
	f.Add("cores=256")
	f.Add("min_ts=5&max_ts=4")
	f.Add("tids=" + string(make([]byte, 300)))
	f.Add("categories=1,,2&min_ts=banana")
	f.Add("%gh&%ij")
	f.Fuzz(func(t *testing.T, raw string) {
		v, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		filter, err := ParseQuery(v)
		if err != nil {
			return
		}
		if filter.MaxTS != 0 && filter.MaxTS < filter.MinTS {
			t.Fatalf("accepted inverted time window: %+v", filter)
		}
		if len(filter.Cores) > maxFilterList || len(filter.Categories) > maxFilterList ||
			len(filter.TIDs) > maxFilterList {
			t.Fatalf("accepted oversized filter list: %+v", filter)
		}
		// An accepted filter must be safe to evaluate.
		filter.Match("tenant", &tracer.Entry{TS: filter.MinTS, TID: 1, Category: 1})
	})
}

// FuzzFrameRoundTrip checks the SSE codec both ways: any entry must
// survive encode → stream-read → decode byte-exact, and the stream
// reader must never panic on the bytes the encoder produced.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint8(3), uint32(4), uint8(5), uint8(1), []byte("payload"))
	f.Add(uint64(0), uint64(0), uint8(0), uint32(0), uint8(0), uint8(0), []byte(nil))
	f.Add(^uint64(0), ^uint64(0), ^uint8(0), ^uint32(0), ^uint8(0), ^uint8(0), []byte{0, 255, 10, 13})
	f.Fuzz(func(t *testing.T, stamp, ts uint64, core uint8, tid uint32, cat, level uint8, payload []byte) {
		if len(payload) > tracer.MaxPayload {
			payload = payload[:tracer.MaxPayload]
		}
		in := tracer.Entry{
			Stamp: stamp, TS: ts, Core: core, TID: tid,
			Category: cat, Level: level, Payload: payload,
		}
		var buf bytes.Buffer
		if err := EncodeFrame(&buf, &in); err != nil {
			t.Fatalf("encode: %v", err)
		}
		ev, data, err := NewStreamReader(&buf).Next()
		if err != nil || ev != EventTrace {
			t.Fatalf("stream read: event %q err %v", ev, err)
		}
		out, err := DecodeFrame(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if out.Stamp != in.Stamp || out.TS != in.TS || out.Core != in.Core ||
			out.TID != in.TID || out.Category != in.Category || out.Level != in.Level ||
			!bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("round trip mismatch: in %+v out %+v", in, out)
		}
	})
}

// FuzzStreamReader feeds arbitrary bytes to the SSE client: no panics,
// and any trace frame it yields must decode or error — never crash.
func FuzzStreamReader(f *testing.F) {
	f.Add([]byte("event: trace\ndata: {\"stamp\":1}\n\n"))
	f.Add([]byte("event: missed\ndata: 9\n\n: comment\n\nevent: evicted\ndata: 3\n\n"))
	f.Add([]byte("data: no event\n\nevent: trace\n\n"))
	f.Add([]byte(": \r\n\r\nevent:\t x\ndata:\n\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		sr := NewStreamReader(bytes.NewReader(raw))
		for i := 0; i < 64; i++ {
			ev, data, err := sr.Next()
			if err != nil {
				return
			}
			switch ev {
			case EventTrace:
				DecodeFrame(data)
			case EventMissed, EventEvicted:
				ParseCount(data)
			}
		}
	})
}
