package live

import (
	"runtime"

	"btrace/internal/obs"
)

// hubObs carries the hub's process-wide series. Unlike the gate's obs
// mirror (which folds single-goroutine stats once per Filter), the hub
// is concurrent already, so Publish/Next update these sharded atomic
// counters directly. Allocated separately from the Hub so the registry
// closure never captures the Hub and the finalizer can fold the series
// when the Hub becomes unreachable.
type hubObs struct {
	published   *obs.Counter // events offered to the hub (admitted batches)
	matched     *obs.Counter // events matching some subscriber's filter
	delivered   *obs.Counter // events handed to subscribers via Next
	missed      *obs.Counter // matched events lost to overwrite/eviction
	subscribed  *obs.Counter // subscriptions accepted
	rejected    *obs.Counter // subscriptions refused at the cap
	evictedSubs *obs.Counter // subscribers evicted for falling behind

	subscribers obs.Gauge // currently attached subscribers
}

func newHubObs() *hubObs {
	return &hubObs{
		published:   obs.NewCounter(0),
		matched:     obs.NewCounter(0),
		delivered:   obs.NewCounter(0),
		missed:      obs.NewCounter(0),
		subscribed:  obs.NewCounter(0),
		rejected:    obs.NewCounter(0),
		evictedSubs: obs.NewCounter(0),
	}
}

// collect emits the hub's series; runs under the registry lock and
// must not reference the Hub (see type comment).
func (o *hubObs) collect(e *obs.Emitter) {
	e.Counter("btrace_live_published_total", "admitted events offered to the live hub", o.published.Load())
	e.Counter("btrace_live_matched_total", "published events matching a subscriber filter", o.matched.Load())
	e.Counter("btrace_live_delivered_total", "events delivered to live subscribers", o.delivered.Load())
	e.Counter("btrace_live_missed_total", "matched events lost to ring overwrite or eviction", o.missed.Load())
	e.Counter("btrace_live_subscriptions_total", "live subscriptions accepted", o.subscribed.Load())
	e.Counter("btrace_live_rejected_total", "live subscriptions refused at the subscriber cap", o.rejected.Load())
	e.Counter("btrace_live_evicted_total", "live subscribers evicted for falling behind", o.evictedSubs.Load())
	e.Gauge("btrace_live_subscribers", "currently attached live subscribers", float64(o.subscribers.Load()))
}

// registerObs wires the hub's series into the process-wide registry;
// the finalizer folds them into retired totals when the Hub goes away.
func (h *Hub) registerObs() {
	reg := obs.Default()
	id := reg.Register(h.obs.collect)
	runtime.SetFinalizer(h, func(*Hub) { reg.Fold(id) })
}
