package live

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"btrace/internal/tracer"
)

// Filter selects the slice of the admitted stream a subscriber wants.
// The parameter set mirrors /store/query (category/core/time plus TID),
// with tenant scoping layered on for cluster mode. Zero values match
// everything.
type Filter struct {
	// Tenant scopes the subscription to one tenant's events; ""
	// matches all tenants (the single-operator dashboard case).
	Tenant string
	// MinTS/MaxTS bound the event virtual timestamp (inclusive;
	// MaxTS 0 = unbounded).
	MinTS, MaxTS uint64
	// Cores, Categories and TIDs are membership filters; empty = all.
	Cores, Categories []uint8
	TIDs              []uint32
}

// Match reports whether an admitted event published under tenant
// passes the filter. The slices are small operator-supplied lists, so
// membership is a linear scan — no allocation, no map.
func (f *Filter) Match(tenant string, e *tracer.Entry) bool {
	if f.Tenant != "" && tenant != f.Tenant {
		return false
	}
	if e.TS < f.MinTS {
		return false
	}
	if f.MaxTS != 0 && e.TS > f.MaxTS {
		return false
	}
	if len(f.Cores) > 0 && !containsU8(f.Cores, e.Core) {
		return false
	}
	if len(f.Categories) > 0 && !containsU8(f.Categories, e.Category) {
		return false
	}
	if len(f.TIDs) > 0 {
		ok := false
		for _, t := range f.TIDs {
			if t == e.TID {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func containsU8(xs []uint8, x uint8) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// maxFilterList bounds the comma lists a request may send: a filter is
// a selection, not a payload.
const maxFilterList = 256

// ParseQuery builds a Filter from /live request parameters: min_ts,
// max_ts, cores, categories (comma-separated uint8 lists) and tids
// (comma-separated uint32 list) — the same shapes /store/query takes.
// Tenant scoping comes from the request header, not the query string,
// so it is not parsed here.
func ParseQuery(v url.Values) (Filter, error) {
	var f Filter
	var err error
	if f.MinTS, err = parseU64(v, "min_ts"); err != nil {
		return f, err
	}
	if f.MaxTS, err = parseU64(v, "max_ts"); err != nil {
		return f, err
	}
	if f.MaxTS != 0 && f.MaxTS < f.MinTS {
		return f, fmt.Errorf("max_ts %d below min_ts %d", f.MaxTS, f.MinTS)
	}
	if f.Cores, err = parseU8List(v, "cores"); err != nil {
		return f, err
	}
	if f.Categories, err = parseU8List(v, "categories"); err != nil {
		return f, err
	}
	if f.TIDs, err = parseU32List(v, "tids"); err != nil {
		return f, err
	}
	return f, nil
}

func parseU64(v url.Values, name string) (uint64, error) {
	s := v.Get(name)
	if s == "" {
		return 0, nil
	}
	u, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, s)
	}
	return u, nil
}

func parseU8List(v url.Values, name string) ([]uint8, error) {
	s := v.Get(name)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) > maxFilterList {
		return nil, fmt.Errorf("%s: more than %d elements", name, maxFilterList)
	}
	out := make([]uint8, 0, len(parts))
	for _, part := range parts {
		u, err := strconv.ParseUint(strings.TrimSpace(part), 10, 8)
		if err != nil {
			return nil, fmt.Errorf("bad %s element %q", name, part)
		}
		out = append(out, uint8(u))
	}
	return out, nil
}

func parseU32List(v url.Values, name string) ([]uint32, error) {
	s := v.Get(name)
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) > maxFilterList {
		return nil, fmt.Errorf("%s: more than %d elements", name, maxFilterList)
	}
	out := make([]uint32, 0, len(parts))
	for _, part := range parts {
		u, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad %s element %q", name, part)
		}
		out = append(out, uint32(u))
	}
	return out, nil
}
